// Multilevel graph bisection: coarsen by heavy-edge matching until the graph
// is small, bisect the coarsest level, then uncoarsen while refining with a
// boundary FM pass at every level. Operates on the undirected weighted gate
// graph (edge weight = connection multiplicity); applied recursively for
// k-way partitions.

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "partition/algorithms.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace plsim {
namespace {

struct MlGraph {
  // CSR adjacency with parallel edge weights; vertex weights for balance.
  std::vector<std::uint32_t> off;
  std::vector<std::uint32_t> adj;
  std::vector<std::uint32_t> wedge;
  std::vector<std::uint32_t> wvert;
  std::size_t n() const { return wvert.size(); }
};

MlGraph from_circuit(const Circuit& c, std::span<const GateId> cells,
                     std::span<const std::uint32_t> local_of) {
  const std::size_t n = cells.size();
  std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> nbr(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (GateId f : c.fanins(cells[i])) {
      const std::uint32_t lf = local_of[f];
      if (lf != static_cast<std::uint32_t>(-1) && lf != i) {
        ++nbr[i][lf];
        ++nbr[lf][static_cast<std::uint32_t>(i)];
      }
    }
  }
  MlGraph g;
  g.wvert.assign(n, 1);
  g.off.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    g.off[i + 1] = g.off[i] + static_cast<std::uint32_t>(nbr[i].size());
  g.adj.resize(g.off[n]);
  g.wedge.resize(g.off[n]);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t k = g.off[i];
    for (auto [u, w] : nbr[i]) {
      g.adj[k] = u;
      g.wedge[k] = w;
      ++k;
    }
  }
  return g;
}

/// Heavy-edge matching coarsening; returns the coarse graph and the map
/// fine-vertex -> coarse-vertex.
MlGraph coarsen(const MlGraph& g, Rng& rng, std::vector<std::uint32_t>& map) {
  const std::size_t n = g.n();
  map.assign(n, static_cast<std::uint32_t>(-1));
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform(i)]);

  std::uint32_t coarse = 0;
  for (std::uint32_t v : order) {
    if (map[v] != static_cast<std::uint32_t>(-1)) continue;
    // Match with the unmatched neighbour of heaviest connecting weight.
    std::uint32_t best = static_cast<std::uint32_t>(-1), bw = 0;
    for (std::uint32_t e = g.off[v]; e < g.off[v + 1]; ++e) {
      const std::uint32_t u = g.adj[e];
      if (map[u] == static_cast<std::uint32_t>(-1) && g.wedge[e] > bw) {
        bw = g.wedge[e];
        best = u;
      }
    }
    map[v] = coarse;
    if (best != static_cast<std::uint32_t>(-1)) map[best] = coarse;
    ++coarse;
  }

  // Build the coarse graph.
  std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> nbr(coarse);
  MlGraph cg;
  cg.wvert.assign(coarse, 0);
  for (std::size_t v = 0; v < n; ++v) {
    cg.wvert[map[v]] += g.wvert[v];
    for (std::uint32_t e = g.off[v]; e < g.off[v + 1]; ++e) {
      const std::uint32_t cu = map[g.adj[e]], cv = map[v];
      if (cu != cv) nbr[cv][cu] += g.wedge[e];
    }
  }
  cg.off.assign(coarse + 1, 0);
  for (std::uint32_t i = 0; i < coarse; ++i)
    cg.off[i + 1] = cg.off[i] + static_cast<std::uint32_t>(nbr[i].size());
  cg.adj.resize(cg.off[coarse]);
  cg.wedge.resize(cg.off[coarse]);
  for (std::uint32_t i = 0; i < coarse; ++i) {
    std::uint32_t k = cg.off[i];
    for (auto [u, w] : nbr[i]) {
      cg.adj[k] = u;
      cg.wedge[k] = w;
      ++k;
    }
  }
  return cg;
}

std::uint64_t side_weight(const MlGraph& g, const std::vector<std::uint8_t>& side,
                          std::uint8_t which) {
  std::uint64_t w = 0;
  for (std::size_t v = 0; v < g.n(); ++v)
    if (side[v] == which) w += g.wvert[v];
  return w;
}

/// Boundary FM refinement pass on the graph edge-cut. `ratio` = target
/// weight share of side 0.
void refine(const MlGraph& g, double ratio, std::vector<std::uint8_t>& side) {
  const std::size_t n = g.n();
  std::uint64_t total = 0;
  std::uint64_t maxw = 1;
  for (std::size_t v = 0; v < n; ++v) {
    total += g.wvert[v];
    maxw = std::max<std::uint64_t>(maxw, g.wvert[v]);
  }
  const double target0 = ratio * static_cast<double>(total);
  const double tol = std::max<double>(static_cast<double>(maxw),
                                      0.03 * static_cast<double>(total));

  for (int pass = 0; pass < 4; ++pass) {
    // Gains for all vertices (positive = moving reduces cut).
    std::vector<std::int64_t> gain(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::uint32_t e = g.off[v]; e < g.off[v + 1]; ++e) {
        gain[v] += (side[g.adj[e]] != side[v])
                       ? static_cast<std::int64_t>(g.wedge[e])
                       : -static_cast<std::int64_t>(g.wedge[e]);
      }
    }
    std::vector<std::uint8_t> locked(n, 0);
    std::uint64_t w0 = side_weight(g, side, 0);
    std::vector<std::uint32_t> moves;
    std::vector<std::int64_t> cumulative;
    std::int64_t acc = 0;

    const std::size_t max_moves = std::min<std::size_t>(n, 32 + n / 16);
    for (std::size_t step = 0; step < max_moves; ++step) {
      std::uint32_t best = static_cast<std::uint32_t>(-1);
      std::int64_t bg = std::numeric_limits<std::int64_t>::min();
      for (std::size_t v = 0; v < n; ++v) {
        if (locked[v]) continue;
        const double nw0 = side[v] == 0
                               ? static_cast<double>(w0 - g.wvert[v])
                               : static_cast<double>(w0 + g.wvert[v]);
        if (nw0 < target0 - tol || nw0 > target0 + tol) continue;
        if (gain[v] > bg) {
          bg = gain[v];
          best = static_cast<std::uint32_t>(v);
        }
      }
      if (best == static_cast<std::uint32_t>(-1)) break;
      locked[best] = 1;
      if (side[best] == 0)
        w0 -= g.wvert[best];
      else
        w0 += g.wvert[best];
      side[best] = 1 - side[best];
      acc += bg;
      moves.push_back(best);
      cumulative.push_back(acc);
      for (std::uint32_t e = g.off[best]; e < g.off[best + 1]; ++e) {
        const std::uint32_t u = g.adj[e];
        gain[u] += (side[u] == side[best])
                       ? -2 * static_cast<std::int64_t>(g.wedge[e])
                       : 2 * static_cast<std::int64_t>(g.wedge[e]);
      }
    }

    std::size_t best_prefix = 0;
    std::int64_t best_acc = 0;
    for (std::size_t i = 0; i < cumulative.size(); ++i) {
      if (cumulative[i] > best_acc) {
        best_acc = cumulative[i];
        best_prefix = i + 1;
      }
    }
    for (std::size_t i = moves.size(); i > best_prefix; --i)
      side[moves[i - 1]] = 1 - side[moves[i - 1]];
    if (best_acc <= 0) break;
  }
}

void ml_bisect(const MlGraph& g, double ratio, Rng& rng,
               std::vector<std::uint8_t>& side) {
  constexpr std::size_t kCoarseEnough = 128;
  if (g.n() <= kCoarseEnough) {
    // Base case: greedy BFS growth from a random seed until side 0 is full.
    side.assign(g.n(), 1);
    std::uint64_t total = 0;
    for (std::size_t v = 0; v < g.n(); ++v) total += g.wvert[v];
    const double target0 = ratio * static_cast<double>(total);
    std::vector<std::uint32_t> frontier{
        static_cast<std::uint32_t>(rng.uniform(g.n()))};
    double grown = 0;
    std::vector<std::uint8_t> seen(g.n(), 0);
    seen[frontier[0]] = 1;
    while (!frontier.empty() && grown < target0) {
      const std::uint32_t v = frontier.back();
      frontier.pop_back();
      side[v] = 0;
      grown += g.wvert[v];
      for (std::uint32_t e = g.off[v]; e < g.off[v + 1]; ++e) {
        if (!seen[g.adj[e]]) {
          seen[g.adj[e]] = 1;
          frontier.push_back(g.adj[e]);
        }
      }
      if (frontier.empty() && grown < target0) {
        // Disconnected: restart from any vertex still on side 1.
        for (std::uint32_t u = 0; u < g.n(); ++u)
          if (side[u] == 1 && !seen[u]) {
            seen[u] = 1;
            frontier.push_back(u);
            break;
          }
        if (frontier.empty()) break;
      }
    }
    refine(g, ratio, side);
    return;
  }

  std::vector<std::uint32_t> map;
  const MlGraph coarse = coarsen(g, rng, map);
  if (coarse.n() >= g.n() * 95 / 100) {
    // Matching stalled (star-like graph); fall back to the base case logic.
    side.assign(g.n(), 1);
    for (std::size_t v = 0; v < g.n(); ++v) side[v] = rng.uniform(2) != 0;
    refine(g, ratio, side);
    return;
  }
  std::vector<std::uint8_t> coarse_side;
  ml_bisect(coarse, ratio, rng, coarse_side);
  side.resize(g.n());
  for (std::size_t v = 0; v < g.n(); ++v) side[v] = coarse_side[map[v]];
  refine(g, ratio, side);
}

void ml_recursive(const Circuit& c, std::vector<GateId>& cells,
                  std::uint32_t k, std::uint32_t first_block, Rng& rng,
                  Partition& p) {
  if (k == 1) {
    for (GateId g : cells) p.block_of[g] = first_block;
    return;
  }
  const std::uint32_t k0 = k / 2, k1 = k - k0;
  std::vector<std::uint32_t> local_of(c.gate_count(),
                                      static_cast<std::uint32_t>(-1));
  for (std::size_t i = 0; i < cells.size(); ++i)
    local_of[cells[i]] = static_cast<std::uint32_t>(i);
  const MlGraph g = from_circuit(c, cells, local_of);
  std::vector<std::uint8_t> side;
  ml_bisect(g, static_cast<double>(k0) / static_cast<double>(k), rng, side);

  std::vector<GateId> left, right;
  for (std::size_t i = 0; i < cells.size(); ++i)
    (side[i] == 0 ? left : right).push_back(cells[i]);
  if (left.empty() && !right.empty()) {
    left.push_back(right.back());
    right.pop_back();
  }
  if (right.empty() && left.size() > 1) {
    right.push_back(left.back());
    left.pop_back();
  }
  ml_recursive(c, left, k0, first_block, rng, p);
  ml_recursive(c, right, k1, first_block + k0, rng, p);
}

}  // namespace

Partition partition_multilevel(const Circuit& c, std::uint32_t k,
                               std::uint64_t seed) {
  PLSIM_CHECK(k >= 1, "partition_multilevel: k must be >= 1");
  Rng rng(seed);
  Partition p;
  p.n_blocks = k;
  p.block_of.assign(c.gate_count(), 0);
  std::vector<GateId> all(c.gate_count());
  for (GateId g = 0; g < c.gate_count(); ++g) all[g] = g;
  ml_recursive(c, all, k, 0, rng, p);
  fix_empty_blocks(c, p);
  return p;
}

}  // namespace plsim
