// Simulated-annealing k-way partitioning. The paper (§III) notes annealing's
// two practical problems — runtime and cost-function design — which the
// C7 partitioning benchmark quantifies against the constructive heuristics.

#include <cmath>

#include "partition/algorithms.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace plsim {

Partition partition_annealing(const Circuit& c, std::uint32_t k,
                              std::uint64_t seed, const AnnealParams& params,
                              std::span<const std::uint32_t> weights) {
  PLSIM_CHECK(k >= 1, "partition_annealing: k must be >= 1");
  PLSIM_CHECK(weights.empty() || weights.size() == c.gate_count(),
              "partition_annealing: weight span size " +
                  std::to_string(weights.size()) + " != gate count " +
                  std::to_string(c.gate_count()));
  Rng rng(seed);
  Partition p = partition_random(c, k, rng.next());
  if (k == 1) return p;

  // Widen before the add: 1 + uint32 wraps in 32-bit arithmetic at
  // UINT32_MAX, zeroing a maximally hot gate's weight.
  auto gate_weight = [&](GateId g) -> std::uint64_t {
    return weights.empty() ? 1 : 1 + static_cast<std::uint64_t>(weights[g]);
  };

  std::vector<std::uint64_t> load(k, 0);
  std::uint64_t total = 0;
  for (GateId g = 0; g < c.gate_count(); ++g) {
    load[p.block_of[g]] += gate_weight(g);
    total += gate_weight(g);
  }
  const double avg = static_cast<double>(total) / k;

  // Cost = cut edges + balance_weight * sum over blocks of squared relative
  // overload. Delta-evaluated per move.
  auto balance_term = [&](std::uint64_t l) {
    const double rel = (static_cast<double>(l) - avg) / avg;
    return rel * rel;
  };

  auto cut_delta = [&](GateId g, std::uint32_t from, std::uint32_t to) {
    std::int64_t delta = 0;
    for (GateId f : c.fanins(g)) {
      if (f == g) continue;
      if (p.block_of[f] == from) ++delta;
      if (p.block_of[f] == to) --delta;
    }
    for (GateId s : c.fanouts(g)) {
      if (s == g) continue;
      if (p.block_of[s] == from) ++delta;
      if (p.block_of[s] == to) --delta;
    }
    return delta;
  };

  double temperature = params.initial_temperature;
  const std::size_t moves = std::min<std::size_t>(
      params.max_moves_per_step,
      static_cast<std::size_t>(params.moves_per_gate *
                               static_cast<double>(c.gate_count())) + 1);

  for (int step = 0; step < params.temperature_steps; ++step) {
    for (std::size_t m = 0; m < moves; ++m) {
      const GateId g = static_cast<GateId>(rng.uniform(c.gate_count()));
      const std::uint32_t from = p.block_of[g];
      std::uint32_t to = static_cast<std::uint32_t>(rng.uniform(k - 1));
      if (to >= from) ++to;

      const std::uint64_t w = gate_weight(g);
      if (load[from] <= w) continue;  // never empty a block

      const double bal_before =
          balance_term(load[from]) + balance_term(load[to]);
      const double bal_after =
          balance_term(load[from] - w) + balance_term(load[to] + w);
      const double delta =
          static_cast<double>(cut_delta(g, from, to)) +
          params.balance_weight * (bal_after - bal_before) * k;

      if (delta <= 0 || rng.chance(std::exp(-delta / temperature))) {
        p.block_of[g] = to;
        load[from] -= w;
        load[to] += w;
      }
    }
    temperature *= params.cooling;
  }
  fix_empty_blocks(c, p);
  return p;
}

std::vector<NamedPartitioner> standard_partitioners() {
  std::vector<NamedPartitioner> v;
  v.push_back({"random", [](const Circuit& c, std::uint32_t k,
                            std::uint64_t s) { return partition_random(c, k, s); }});
  v.push_back({"round_robin", [](const Circuit& c, std::uint32_t k,
                                 std::uint64_t) {
                 return partition_round_robin(c, k);
               }});
  v.push_back({"levels", [](const Circuit& c, std::uint32_t k, std::uint64_t) {
                 return partition_level_chunks(c, k);
               }});
  v.push_back({"strings", [](const Circuit& c, std::uint32_t k,
                             std::uint64_t s) {
                 return partition_strings(c, k, s);
               }});
  v.push_back({"cones", [](const Circuit& c, std::uint32_t k, std::uint64_t) {
                 return partition_cones(c, k);
               }});
  v.push_back({"kl", [](const Circuit& c, std::uint32_t k, std::uint64_t s) {
                 return partition_kl(c, k, s);
               }});
  v.push_back({"fm", [](const Circuit& c, std::uint32_t k, std::uint64_t s) {
                 return partition_fm(c, k, s);
               }});
  v.push_back({"anneal", [](const Circuit& c, std::uint32_t k,
                            std::uint64_t s) {
                 return partition_annealing(c, k, s);
               }});
  v.push_back({"multilevel", [](const Circuit& c, std::uint32_t k,
                                std::uint64_t s) {
                 return partition_multilevel(c, k, s);
               }});
  return v;
}

}  // namespace plsim
