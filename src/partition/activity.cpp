#include "partition/activity.hpp"

#include <algorithm>

#include "core/block.hpp"
#include "core/environment.hpp"
#include "partition/algorithms.hpp"
#include "sim/plan.hpp"
#include "trace/reader.hpp"
#include "util/error.hpp"

namespace plsim {

ActivityProfile profile_activity(const Circuit& c, const Stimulus& stim,
                                 std::size_t cycles) {
  Stimulus shortened = stim;
  if (shortened.vectors.size() > cycles) shortened.vectors.resize(cycles);

  BlockOptions bopts;
  bopts.clock_period = shortened.period;
  bopts.horizon = shortened.horizon();
  bopts.save = SaveMode::None;
  bopts.record_trace = true;  // committed value changes = potential messages
  BlockSimulator block(SimPlan::build_whole(c), 0, bopts);

  const std::vector<Message> env = environment_messages(c, shortened);
  std::size_t env_pos = 0;
  std::vector<Message> externals;
  std::vector<Message> out;
  for (;;) {
    const Tick t_env = env_pos < env.size() ? env[env_pos].time : kTickInf;
    const Tick t = std::min(t_env, block.next_internal_time());
    if (t >= bopts.horizon || t == kTickInf) break;
    externals.clear();
    while (env_pos < env.size() && env[env_pos].time == t)
      externals.push_back(env[env_pos++]);
    block.process_batch(t, externals, out);
  }

  ActivityProfile prof;
  prof.source = "presim";
  prof.evals.assign(c.gate_count(), 0);
  prof.messages.assign(c.gate_count(), 0);
  for (GateId g = 0; g < c.gate_count(); ++g) prof.evals[g] = block.eval_count(g);
  for (const ChangeRecord& r : block.trace()) ++prof.messages[r.gate];
  return prof;
}

namespace {

void accumulate_records(const Circuit& c, const trace::TraceFile& tf,
                        const std::string& path, ActivityProfile& prof) {
  for (const trace::Record& r : tf.records) {
    switch (r.kind) {
      case static_cast<std::uint16_t>(trace::Kind::GateEval):
      case static_cast<std::uint16_t>(trace::Kind::NetMsg): {
        PLSIM_CHECK(r.aux < c.gate_count(),
                    "activity: trace '" + path + "' names gate " +
                        std::to_string(r.aux) + " outside the circuit (" +
                        std::to_string(c.gate_count()) +
                        " gates) — wrong circuit for this capture?");
        auto& dst =
            r.kind == static_cast<std::uint16_t>(trace::Kind::GateEval)
                ? prof.evals
                : prof.messages;
        dst[r.aux] += r.tick;  // counts ride in the tick field
        break;
      }
      case static_cast<std::uint16_t>(trace::Kind::Blocked):
        prof.blocked_units += r.dur;
        break;
      case static_cast<std::uint16_t>(trace::Kind::BarrierWait):
        prof.barrier_units += r.dur;
        break;
      default:
        break;  // timeline records other tools care about
    }
  }
}

}  // namespace

ActivityProfile activity_from_trace(const Circuit& c,
                                    const std::string& path) {
  const std::string one[] = {path};
  return activity_from_traces(c, one);
}

ActivityProfile activity_from_traces(const Circuit& c,
                                     std::span<const std::string> paths) {
  PLSIM_CHECK(!paths.empty(), "activity: no trace files given");
  ActivityProfile prof;
  prof.evals.assign(c.gate_count(), 0);
  prof.messages.assign(c.gate_count(), 0);
  bool first = true;
  for (const std::string& path : paths) {
    const trace::TraceFile tf = trace::read_trace_file(path);
    if (first) {
      prof.clock = tf.clock;
      prof.source = tf.engine;
      first = false;
    } else {
      // Per-gate counts are clock-free, but the blocked/barrier time sums
      // are not: adding virtual work units to wall nanoseconds yields
      // garbage, so refuse mixed captures outright (header flag, bit 0).
      PLSIM_CHECK(
          tf.clock == prof.clock,
          "activity: clock-unit mismatch — '" + path + "' records " +
              (tf.clock == trace::ClockKind::VirtualMilliUnits
                   ? "virtual work units"
                   : "wall nanoseconds") +
              " but earlier captures record the other; aggregate only "
              "traces from the same clock domain");
      if (tf.engine != prof.source) prof.source += "+" + tf.engine;
    }
    accumulate_records(c, tf, path, prof);
  }
  return prof;
}

std::vector<std::uint32_t> compress_counts(
    std::span<const std::uint64_t> counts) {
  std::uint64_t maxc = 0;
  for (std::uint64_t v : counts) maxc = std::max(maxc, v);
  unsigned shift = 0;
  while ((maxc >> shift) > 0xFFFFFFFFull) ++shift;
  std::vector<std::uint32_t> out(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i)
    out[i] = static_cast<std::uint32_t>(counts[i] >> shift);
  return out;
}

Partition partition_with_activity(const Circuit& c, std::uint32_t k,
                                  std::uint64_t seed,
                                  const ActivityProfile& profile) {
  PLSIM_CHECK(profile.evals.size() == c.gate_count() &&
                  profile.messages.size() == c.gate_count(),
              "partition_with_activity: profile size mismatch with circuit");
  const std::vector<std::uint32_t> gw = compress_counts(profile.evals);
  const std::vector<std::uint32_t> nw = compress_counts(profile.messages);
  return partition_multilevel(c, k, seed, gw, nw);
}

}  // namespace plsim
