#include "partition/schedule.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace plsim {

namespace {

constexpr std::uint32_t kNoBlockSel = 0xffffffffu;

// FNV-1a over the order words, byte by byte.
std::uint64_t order_digest(const std::vector<std::uint32_t>& order) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint32_t v : order) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (v >> shift) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

BlockSchedule build_block_schedule(const Circuit& c, const Partition& p,
                                   std::span<const std::uint32_t> activity) {
  validate_partition(c, p);
  PLSIM_CHECK(activity.empty() || activity.size() == c.gate_count(),
              "build_block_schedule: activity size mismatch");
  const std::uint32_t n = p.n_blocks;

  // Symmetric block adjacency: w(a, b) accumulates the activity (or 1) of
  // every gate with a cross-block fanout between a and b. Dests are deduped
  // per gate so a multi-fanout net counts once per (gate, block) pair, the
  // same granularity at which the engines emit one message per exported gate.
  std::vector<std::uint64_t> w(static_cast<std::size_t>(n) * n, 0);
  std::vector<std::uint32_t> dsts;
  for (GateId g = 0; g < c.gate_count(); ++g) {
    const std::uint32_t a = p.block_of[g];
    dsts.clear();
    for (const GateId s : c.fanouts(g)) {
      const std::uint32_t b = p.block_of[s];
      if (b != a) dsts.push_back(b);
    }
    std::sort(dsts.begin(), dsts.end());
    dsts.erase(std::unique(dsts.begin(), dsts.end()), dsts.end());
    const std::uint64_t act = activity.empty() ? 1 : activity[g];
    for (const std::uint32_t b : dsts) {
      w[static_cast<std::size_t>(a) * n + b] += act;
      w[static_cast<std::size_t>(b) * n + a] += act;
    }
  }

  std::vector<std::uint64_t> total(n, 0);
  for (std::uint32_t a = 0; a < n; ++a)
    for (std::uint32_t b = 0; b < n; ++b)
      total[a] += w[static_cast<std::size_t>(a) * n + b];

  // Greedy heaviest chain. All ties break toward the lowest block id, so the
  // schedule is a pure function of (circuit, partition, activity).
  BlockSchedule s;
  s.order.reserve(n);
  std::vector<std::uint8_t> used(n, 0);
  auto heaviest_unused = [&](const std::uint64_t* row) {
    std::uint32_t best = kNoBlockSel;
    std::uint64_t best_w = 0;
    for (std::uint32_t b = 0; b < n; ++b) {
      if (used[b]) continue;
      const std::uint64_t wb = row == nullptr ? total[b] : row[b];
      if (best == kNoBlockSel || wb > best_w) {
        best = b;
        best_w = wb;
      }
    }
    return row != nullptr && best_w == 0 ? kNoBlockSel : best;
  };
  while (s.order.size() < n) {
    std::uint32_t next = kNoBlockSel;
    if (!s.order.empty()) {
      const std::uint32_t tail = s.order.back();
      next = heaviest_unused(&w[static_cast<std::size_t>(tail) * n]);
    }
    if (next == kNoBlockSel) next = heaviest_unused(nullptr);
    used[next] = 1;
    s.order.push_back(next);
  }
  s.digest = order_digest(s.order);
  return s;
}

Partition schedule_partition(const Circuit& c, const Partition& p,
                             std::span<const std::uint32_t> activity) {
  const BlockSchedule s = build_block_schedule(c, p, activity);
  std::vector<std::uint32_t> new_of_old(p.n_blocks);
  for (std::uint32_t i = 0; i < p.n_blocks; ++i) new_of_old[s.order[i]] = i;
  Partition q;
  q.n_blocks = p.n_blocks;
  q.block_of.resize(p.block_of.size());
  for (std::size_t g = 0; g < p.block_of.size(); ++g)
    q.block_of[g] = new_of_old[p.block_of[g]];
  return q;
}

}  // namespace plsim
