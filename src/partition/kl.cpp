// Kernighan-Lin bisection [16], applied recursively. Classic KL swaps pairs
// to improve edge cut; we use a windowed candidate search (top-D cells per
// side) so passes stay tractable on large netlists, and cap the number of
// tentative swaps per pass.

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "partition/algorithms.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace plsim {
namespace {

struct Graph {
  // Undirected weighted adjacency over local cell ids.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj;
};

Graph build_graph(const Circuit& c, std::span<const GateId> cells,
                  std::span<const std::uint32_t> local_of) {
  Graph g;
  g.adj.resize(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::unordered_map<std::uint32_t, std::uint32_t> nbr;
    for (GateId f : c.fanins(cells[i])) {
      const std::uint32_t lf = local_of[f];
      if (lf != static_cast<std::uint32_t>(-1) && lf != i) ++nbr[lf];
    }
    for (GateId s : c.fanouts(cells[i])) {
      const std::uint32_t ls = local_of[s];
      if (ls != static_cast<std::uint32_t>(-1) && ls != i) ++nbr[ls];
    }
    g.adj[i].assign(nbr.begin(), nbr.end());
  }
  return g;
}

void kl_bisect(const Graph& g, Rng& rng, std::vector<std::uint8_t>& side) {
  const std::size_t n = g.adj.size();
  side.assign(n, 0);
  if (n < 2) return;

  // Random balanced initial split.
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform(i)]);
  for (std::size_t i = 0; i < n; ++i) side[order[i]] = i % 2;

  std::vector<std::int64_t> d(n);
  auto recompute_d = [&] {
    for (std::size_t v = 0; v < n; ++v) {
      std::int64_t dv = 0;
      for (auto [u, w] : g.adj[v])
        dv += (side[u] != side[v]) ? static_cast<std::int64_t>(w)
                                   : -static_cast<std::int64_t>(w);
      d[v] = dv;
    }
  };

  constexpr std::size_t kWindow = 48;
  const std::size_t max_swaps = std::min<std::size_t>(n / 2, 256 + n / 64);

  for (int pass = 0; pass < 6; ++pass) {
    recompute_d();
    std::vector<std::uint8_t> locked(n, 0);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> swaps;
    std::vector<std::int64_t> cumulative;
    std::int64_t acc = 0;

    for (std::size_t step = 0; step < max_swaps; ++step) {
      // Top-window unlocked cells by D on each side.
      std::vector<std::uint32_t> cand[2];
      for (std::uint32_t v = 0; v < n; ++v)
        if (!locked[v]) cand[side[v]].push_back(v);
      if (cand[0].empty() || cand[1].empty()) break;
      for (int s = 0; s < 2; ++s) {
        const std::size_t w = std::min(kWindow, cand[s].size());
        std::partial_sort(cand[s].begin(), cand[s].begin() + w, cand[s].end(),
                          [&](std::uint32_t a, std::uint32_t b) {
                            return d[a] > d[b];
                          });
        cand[s].resize(w);
      }
      // Best pair within the window.
      std::int64_t best_gain = std::numeric_limits<std::int64_t>::min();
      std::uint32_t best_a = 0, best_b = 0;
      for (std::uint32_t a : cand[0]) {
        for (std::uint32_t b : cand[1]) {
          std::int64_t cab = 0;
          for (auto [u, w] : g.adj[a])
            if (u == b) cab = w;
          const std::int64_t gain = d[a] + d[b] - 2 * cab;
          if (gain > best_gain) {
            best_gain = gain;
            best_a = a;
            best_b = b;
          }
        }
      }
      locked[best_a] = locked[best_b] = 1;
      acc += best_gain;
      swaps.emplace_back(best_a, best_b);
      cumulative.push_back(acc);
      // Tentatively swap and update D of unlocked neighbours.
      side[best_a] = 1;
      side[best_b] = 0;
      for (std::uint32_t v : {best_a, best_b}) {
        for (auto [u, w] : g.adj[v]) {
          if (locked[u]) continue;
          d[u] += (side[u] == side[v]) ? -2 * static_cast<std::int64_t>(w)
                                       : 2 * static_cast<std::int64_t>(w);
        }
      }
    }

    // Keep the best prefix of swaps.
    std::size_t best_prefix = 0;
    std::int64_t best_acc = 0;
    for (std::size_t i = 0; i < cumulative.size(); ++i) {
      if (cumulative[i] > best_acc) {
        best_acc = cumulative[i];
        best_prefix = i + 1;
      }
    }
    for (std::size_t i = swaps.size(); i > best_prefix; --i) {
      side[swaps[i - 1].first] = 0;
      side[swaps[i - 1].second] = 1;
    }
    if (best_acc <= 0) break;
  }
}

void kl_recursive(const Circuit& c, std::vector<GateId>& cells, std::uint32_t k,
                  std::uint32_t first_block, Rng& rng, Partition& p) {
  if (k == 1) {
    for (GateId g : cells) p.block_of[g] = first_block;
    return;
  }
  const std::uint32_t k0 = k / 2, k1 = k - k0;
  std::vector<std::uint32_t> local_of(c.gate_count(),
                                      static_cast<std::uint32_t>(-1));
  for (std::size_t i = 0; i < cells.size(); ++i)
    local_of[cells[i]] = static_cast<std::uint32_t>(i);
  const Graph g = build_graph(c, cells, local_of);
  std::vector<std::uint8_t> side;
  kl_bisect(g, rng, side);

  std::vector<GateId> left, right;
  for (std::size_t i = 0; i < cells.size(); ++i)
    (side[i] == 0 ? left : right).push_back(cells[i]);
  if (left.empty() && !right.empty()) {
    left.push_back(right.back());
    right.pop_back();
  }
  if (right.empty() && left.size() > 1) {
    right.push_back(left.back());
    left.pop_back();
  }
  kl_recursive(c, left, k0, first_block, rng, p);
  kl_recursive(c, right, k1, first_block + k0, rng, p);
}

}  // namespace

Partition partition_kl(const Circuit& c, std::uint32_t k, std::uint64_t seed) {
  PLSIM_CHECK(k >= 1, "partition_kl: k must be >= 1");
  Rng rng(seed);
  Partition p;
  p.n_blocks = k;
  p.block_of.assign(c.gate_count(), 0);
  std::vector<GateId> all(c.gate_count());
  for (GateId g = 0; g < c.gate_count(); ++g) all[g] = g;
  kl_recursive(c, all, k, 0, rng, p);
  fix_empty_blocks(c, p);
  return p;
}

}  // namespace plsim
