#pragma once
// Trace -> partition feedback (paper §III/§VI): turn measured activity — a
// profiling run's per-gate evaluation counts and per-net message counts —
// into the weight spans the partitioners consume, closing the loop the
// paper argues determines parallel speedup: balance *dynamic* load and
// minimize *active* cut traffic, not static gate counts.
//
// Two sources produce the same ActivityProfile:
//   profile_activity()      an in-process golden pre-simulation (no trace
//                           file involved); the two-pass engine driver
//                           (EngineConfig::activity_feedback) uses this.
//   activity_from_trace()   a PLSIM_TRACE binary capture containing the
//                           GateEval/NetMsg summary records engines flush at
//                           end of run; offline tooling and benches use this.
//
// Counts are kept in uint64 (summed activity exceeds 2^32 on million-event
// runs); compress_counts() scales them into the uint32 spans the partition
// API takes, preserving ratios.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"
#include "partition/partition.hpp"
#include "stim/stimulus.hpp"
#include "trace/trace.hpp"

namespace plsim {

/// Measured per-gate activity, from a pre-simulation or a trace capture.
struct ActivityProfile {
  std::vector<std::uint64_t> evals;     ///< per-gate evaluation counts
  std::vector<std::uint64_t> messages;  ///< per-driver toggle/message counts
  /// Which clock produced any time-valued fields below (binary header flag;
  /// the per-gate counts themselves are clock-independent).
  trace::ClockKind clock = trace::ClockKind::WallNs;
  std::uint64_t blocked_units = 0;  ///< summed Blocked span time (clock units)
  std::uint64_t barrier_units = 0;  ///< summed BarrierWait time (clock units)
  std::string source;               ///< "presim" or the trace's engine name
};

/// Profile by golden pre-simulation over the first `cycles` stimulus
/// vectors (paper §III's pre-simulation measurement): evals from the
/// block simulator's per-gate counters, messages from the recorded value-
/// change trace (every committed output change is one potential message
/// per cut fanout edge).
ActivityProfile profile_activity(const Circuit& c, const Stimulus& stim,
                                 std::size_t cycles);

/// Decode one PLSIM_TRACE binary capture into a profile. Honors the
/// header's clock flag (virtual work units vs wall ns) rather than assuming
/// wall clocks. Throws plsim::Error on format errors or when a per-gate
/// summary record names a gate outside `c`.
ActivityProfile activity_from_trace(const Circuit& c, const std::string& path);

/// Aggregate several captures (e.g. one per engine run of a sweep). All
/// files must agree on the clock kind — mixing virtual-unit and wall-ns
/// captures would add incommensurable times, so a mismatch throws
/// plsim::Error instead of producing garbage totals.
ActivityProfile activity_from_traces(const Circuit& c,
                                     std::span<const std::string> paths);

/// Scale 64-bit counts into the uint32 weight spans the partitioners take:
/// an identity copy when everything fits, otherwise a uniform right-shift
/// of every count (ratios preserved; uniform inputs stay uniform).
std::vector<std::uint32_t> compress_counts(
    std::span<const std::uint64_t> counts);

/// The activity-weighted repartition at the heart of the two-pass flow:
/// multilevel with the profile's eval counts as vertex weights and its
/// message counts as net weights.
Partition partition_with_activity(const Circuit& c, std::uint32_t k,
                                  std::uint64_t seed,
                                  const ActivityProfile& profile);

}  // namespace plsim
