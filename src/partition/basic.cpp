// Baseline partitioners: random, round-robin, levelized chunks, strings,
// cones, and the pre-simulation activity refinement.

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>

#include "partition/algorithms.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace plsim {

Partition partition_random(const Circuit& c, std::uint32_t k,
                           std::uint64_t seed) {
  PLSIM_CHECK(k >= 1, "partition_random: k must be >= 1");
  Rng rng(seed);
  Partition p;
  p.n_blocks = k;
  p.block_of.resize(c.gate_count());
  for (auto& b : p.block_of) b = static_cast<std::uint32_t>(rng.uniform(k));
  fix_empty_blocks(c, p);
  return p;
}

Partition partition_round_robin(const Circuit& c, std::uint32_t k) {
  PLSIM_CHECK(k >= 1, "partition_round_robin: k must be >= 1");
  Partition p;
  p.n_blocks = k;
  p.block_of.resize(c.gate_count());
  for (GateId g = 0; g < c.gate_count(); ++g) p.block_of[g] = g % k;
  fix_empty_blocks(c, p);
  return p;
}

Partition partition_level_chunks(const Circuit& c, std::uint32_t k,
                                 std::span<const std::uint32_t> weights) {
  PLSIM_CHECK(k >= 1, "partition_level_chunks: k must be >= 1");
  PLSIM_CHECK(weights.empty() || weights.size() == c.gate_count(),
              "partition_level_chunks: weight span size " +
                  std::to_string(weights.size()) + " != gate count " +
                  std::to_string(c.gate_count()));
  std::uint64_t total = 0;
  for (GateId g = 0; g < c.gate_count(); ++g)
    total += weights.empty() ? 1 : weights[g];
  Partition p;
  p.n_blocks = k;
  p.block_of.assign(c.gate_count(), 0);
  const double per_block = static_cast<double>(total) / k;
  std::uint64_t acc = 0;
  std::uint32_t blk = 0;
  for (GateId g : c.level_order()) {
    if (static_cast<double>(acc) >= per_block * (blk + 1) && blk + 1 < k)
      ++blk;
    p.block_of[g] = blk;
    acc += weights.empty() ? 1 : weights[g];
  }
  fix_empty_blocks(c, p);
  return p;
}

Partition partition_strings(const Circuit& c, std::uint32_t k,
                            std::uint64_t seed) {
  PLSIM_CHECK(k >= 1, "partition_strings: k must be >= 1");
  Rng rng(seed);
  Partition p;
  p.n_blocks = k;
  p.block_of.assign(c.gate_count(), 0);
  std::vector<std::uint8_t> assigned(c.gate_count(), 0);
  std::vector<std::uint64_t> load(k, 0);

  auto least_loaded = [&] {
    std::uint32_t best = 0;
    for (std::uint32_t b = 1; b < k; ++b)
      if (load[b] < load[best]) best = b;
    return best;
  };

  // Start strings from primary inputs first, then any unassigned gate, and
  // follow an unassigned fanout until the chain dead-ends (a primary output
  // or a gate whose fanouts are all claimed).
  std::vector<GateId> starts(c.primary_inputs().begin(),
                             c.primary_inputs().end());
  for (GateId g = 0; g < c.gate_count(); ++g) starts.push_back(g);

  for (GateId s : starts) {
    if (assigned[s]) continue;
    const std::uint32_t blk = least_loaded();
    GateId cur = s;
    for (;;) {
      assigned[cur] = 1;
      p.block_of[cur] = blk;
      ++load[blk];
      GateId next = kNoGate;
      const auto fo = c.fanouts(cur);
      if (!fo.empty()) {
        // Randomize the starting offset so strings spread across fanouts.
        const std::size_t off = rng.uniform(fo.size());
        for (std::size_t i = 0; i < fo.size(); ++i) {
          const GateId cand = fo[(i + off) % fo.size()];
          if (!assigned[cand]) {
            next = cand;
            break;
          }
        }
      }
      if (next == kNoGate) break;
      cur = next;
    }
  }
  fix_empty_blocks(c, p);
  return p;
}

Partition partition_cones(const Circuit& c, std::uint32_t k) {
  PLSIM_CHECK(k >= 1, "partition_cones: k must be >= 1");
  Partition p;
  p.n_blocks = k;
  p.block_of.assign(c.gate_count(), 0);
  std::vector<std::uint8_t> assigned(c.gate_count(), 0);
  std::vector<std::uint64_t> load(k, 0);

  auto least_loaded = [&] {
    std::uint32_t best = 0;
    for (std::uint32_t b = 1; b < k; ++b)
      if (load[b] < load[best]) best = b;
    return best;
  };

  // Cone roots: primary outputs, then flip-flops (their D cones), then
  // anything left over.
  std::vector<GateId> roots(c.primary_outputs().begin(),
                            c.primary_outputs().end());
  roots.insert(roots.end(), c.flip_flops().begin(), c.flip_flops().end());
  for (GateId g = 0; g < c.gate_count(); ++g) roots.push_back(g);

  std::deque<GateId> frontier;
  for (GateId root : roots) {
    if (assigned[root]) continue;
    const std::uint32_t blk = least_loaded();
    frontier.clear();
    frontier.push_back(root);
    assigned[root] = 1;
    while (!frontier.empty()) {
      const GateId g = frontier.front();
      frontier.pop_front();
      p.block_of[g] = blk;
      ++load[blk];
      for (GateId f : c.fanins(g)) {
        if (!assigned[f]) {
          assigned[f] = 1;
          frontier.push_back(f);
        }
      }
    }
  }
  fix_empty_blocks(c, p);
  return p;
}

Partition refine_with_activity(const Circuit& c, Partition base,
                               std::span<const std::uint32_t> activity) {
  PLSIM_CHECK(activity.size() == c.gate_count(),
              "refine_with_activity: activity span size " +
                  std::to_string(activity.size()) + " != gate count " +
                  std::to_string(c.gate_count()));
  PLSIM_CHECK(base.block_of.size() == c.gate_count(),
              "refine_with_activity: partition size " +
                  std::to_string(base.block_of.size()) + " != gate count " +
                  std::to_string(c.gate_count()));
  const std::uint32_t k = base.n_blocks;
  // Weight 1 + activity so inactive gates still carry placement cost; widen
  // before the add so a UINT32_MAX count cannot wrap to zero weight.
  auto weight = [&](GateId g) -> std::uint64_t {
    return 1 + static_cast<std::uint64_t>(activity[g]);
  };

  std::vector<std::uint64_t> load(k, 0);
  std::uint64_t total = 0;
  for (GateId g = 0; g < c.gate_count(); ++g) {
    load[base.block_of[g]] += weight(g);
    total += weight(g);
  }
  const double target = static_cast<double>(total) / k;

  // Greedy: repeatedly move, from the most loaded block, the gate whose move
  // to the least loaded block least increases (or best decreases) the cut.
  for (int iter = 0; iter < 4 * static_cast<int>(k); ++iter) {
    std::uint32_t hi = 0, lo = 0;
    for (std::uint32_t b = 1; b < k; ++b) {
      if (load[b] > load[hi]) hi = b;
      if (load[b] < load[lo]) lo = b;
    }
    if (static_cast<double>(load[hi]) < 1.05 * target) break;

    GateId best = kNoGate;
    std::int64_t best_delta = std::numeric_limits<std::int64_t>::max();
    for (GateId g = 0; g < c.gate_count(); ++g) {
      if (base.block_of[g] != hi) continue;
      if (load[hi] - weight(g) < load[lo] + weight(g)) continue;  // overshoot
      std::int64_t delta = 0;
      for (GateId f : c.fanins(g))
        delta += (base.block_of[f] == lo) ? -1 : (base.block_of[f] == hi);
      for (GateId s : c.fanouts(g))
        delta += (base.block_of[s] == lo) ? -1 : (base.block_of[s] == hi);
      if (delta < best_delta) {
        best_delta = delta;
        best = g;
      }
    }
    if (best == kNoGate) break;
    load[hi] -= weight(best);
    load[lo] += weight(best);
    base.block_of[best] = lo;
  }
  fix_empty_blocks(c, base);
  return base;
}

}  // namespace plsim
