#pragma once
// Circuit partitioning (paper §III): assignment of gates (LPs) to blocks,
// balancing computational load against cross-block communication volume.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/circuit.hpp"

namespace plsim {

struct Partition {
  std::uint32_t n_blocks = 1;
  /// block_of[g] in [0, n_blocks)
  std::vector<std::uint32_t> block_of;

  std::uint32_t block(GateId g) const { return block_of[g]; }

  /// Gate lists per block.
  std::vector<std::vector<GateId>> blocks(const Circuit& c) const;

  /// Gates whose fanout (or primary-output status) crosses their block
  /// boundary — the messages sources of the parallel run.
  std::vector<std::vector<GateId>> exported(const Circuit& c) const;
};

/// Throws if the partition is malformed (wrong size, out-of-range block ids,
/// or an empty block).
void validate_partition(const Circuit& c, const Partition& p);

/// Move a gate into every empty block (from the largest ones) so that each
/// block is non-empty; partitioning heuristics call this before returning.
void fix_empty_blocks(const Circuit& c, Partition& p);

struct PartitionMetrics {
  std::uint64_t cut_edges = 0;   ///< fanin edges crossing block boundaries
  std::uint64_t cut_gates = 0;   ///< gates with at least one external sink
  std::uint64_t cut_traffic = 0; ///< cut edges weighted by driver activity
  std::uint64_t total_weight = 0;
  std::uint64_t max_load = 0;
  std::uint64_t min_load = 0;
  double imbalance = 1.0;        ///< max block load / average block load
};

/// Load uses `weights` when given (e.g. pre-simulated evaluation frequency),
/// unit gate weight otherwise. `net_weights` (per-driver message counts)
/// weights cut_traffic — with it empty, cut_traffic == cut_edges. Non-empty
/// spans must match the gate count (throws plsim::Error otherwise).
PartitionMetrics evaluate_partition(
    const Circuit& c, const Partition& p,
    std::span<const std::uint32_t> weights = {},
    std::span<const std::uint32_t> net_weights = {});

}  // namespace plsim
