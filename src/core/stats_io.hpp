#pragma once
// Serialization of engine counters into the benchmark metrics layer
// (util/metrics.hpp). Metric names mirror the EngineStats field names so the
// schema stays greppable; every counter is emitted (zeros included) so a
// baseline and a candidate always have the same key set to diff.

#include "core/types.hpp"
#include "util/metrics.hpp"

namespace plsim {

/// Record every EngineStats counter under "stats.<field>".
void record_stats(MetricsRun& run, const EngineStats& s);

/// Record a threaded-engine result: all counters plus the host wall time
/// (under "wall.seconds" — excluded from regression comparison).
void record_result(MetricsRun& run, const RunResult& r);

}  // namespace plsim
