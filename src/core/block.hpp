#pragma once
// BlockSimulator: event-driven gate-level evaluation of one block of a
// partitioned circuit — the paper's logical process (§II): it "manages local
// state information for its components, processes simulation events, and
// maintains a local simulated time reference".
//
// Every execution strategy in plsim (sequential golden, synchronous,
// conservative, optimistic, threaded or virtual-platform) drives the same
// BlockSimulator and differs only in *when* each block is allowed to advance
// and how messages travel. That single shared semantics is what makes
// bit-identical cross-engine equivalence testable.
//
// Since PR 4 the block runs on a compiled evaluation plan (sim/plan.hpp): a
// BlockPlan view with partition-local value arrays, fanins/fanouts resolved
// to local indices at plan-build time, and table-driven gate evaluation
// (sim/tables.hpp) instead of interpretive switch dispatch. Internal events
// carry *local* gate indices; global GateIds appear only on the
// message/trace/waveform boundary.
//
// Semantics per timestamp batch at time t:
//   phase A  on a clock edge, every owned DFF samples its D input using
//            pre-t values and schedules Q at t + delay(dff);
//   phase B  all wire changes at t (internal events and external messages)
//            are applied;
//   phase C  affected owned combinational gates are evaluated once each; an
//            output change is scheduled at t + delay(gate) unless it equals
//            the gate's already-projected output (selective trace), and is
//            emitted immediately as a Message when the gate is exported.
// Phase ordering makes the result independent of message arrival order.

#include <functional>
#include <memory>
#include <queue>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "event/ladder_queue.hpp"
#include "logic/value.hpp"
#include "netlist/circuit.hpp"
#include "sim/plan.hpp"

namespace plsim {

struct BlockOptions {
  Tick clock_period = 10;
  Tick horizon = 0;        ///< simulate changes strictly before this time
  SaveMode save = SaveMode::None;
  bool record_trace = false;
  /// Maintain next_wire_time()/next_clock_time() for adaptive conservative
  /// lookahead. Requires SaveMode::None: rollback re-inserts events without
  /// updating the wire-time heap, so the two are mutually exclusive.
  bool track_lookahead = false;
};

/// Per-batch work counters, the currency of the virtual-platform cost model.
struct BatchStats {
  std::uint32_t wire_events = 0;
  std::uint32_t evaluations = 0;
  std::uint32_t dff_samples = 0;
  std::uint32_t messages_out = 0;
  std::uint64_t save_bytes = 0;
  std::uint32_t undo_entries = 0;
  /// False when a sparse-checkpoint interval (set_save_interval > 1) skipped
  /// this batch's fixed checkpoint cost. Cost-model accounting only: the
  /// incremental undo log itself is always written, so rollback stays exact.
  bool checkpoint = true;
};

class BlockSimulator {
 public:
  /// Run block `block` of a shared compiled plan (the engines' path: one
  /// SimPlan per run, one BlockPlan view per block).
  BlockSimulator(std::shared_ptr<const SimPlan> plan, std::uint32_t block,
                 const BlockOptions& opts);

  /// Convenience: compile a dedicated single-block plan for `owned` gates.
  /// `exported` — owned gates whose changes must be emitted as messages.
  BlockSimulator(const Circuit& circuit, std::span<const GateId> owned,
                 std::span<const GateId> exported, const BlockOptions& opts);

  /// Earliest pending internal event time (kTickInf if none).
  Tick next_internal_time() { return queue_.next_time(); }

  /// Process the single timestamp batch at time t. Preconditions:
  /// t <= next_internal_time(), every external has time == t, and t is the
  /// earliest unprocessed time for this block. Emitted messages are appended
  /// to `out`.
  BatchStats process_batch(Tick t, std::span<const Message> externals,
                           std::vector<Message>& out);

  /// Work performed by one rollback, for cost accounting.
  struct RollbackStats {
    std::uint32_t batches = 0;   ///< batches undone
    std::uint64_t entries = 0;   ///< incremental log entries replayed
    std::uint64_t bytes = 0;     ///< bytes restored (full-copy mode)
  };

  /// Undo every batch processed at time >= t (requires SaveMode != None and
  /// no fossil collection past t).
  RollbackStats rollback_to(Tick t);

  /// Discard saved history for batches with time < gvt (they can no longer
  /// roll back); commits their trace records. Returns batches discarded.
  std::size_t fossil_collect(Tick gvt);

  /// Number of batches still held in the rollback history.
  std::size_t history_depth() const {
    return save_ == SaveMode::Full ? snapshots_.size() : undo_batches_.size();
  }

  /// Current value of a gate in this block's scope (owned or boundary).
  Logic4 value(GateId g) const;

  /// True if `g` is owned by or a boundary input of this block — i.e. the
  /// block must be told about changes of `g`.
  bool in_scope(GateId g) const {
    return bp_->to_local[g] != BlockPlan::kNotLocal;
  }

  /// Copy owned gates' current values into a circuit-wide array.
  void harvest_values(std::vector<Logic4>& into) const;

  const WaveHash& wave() const { return wave_; }
  const Trace& trace() const { return trace_; }
  const EngineStats& stats() const { return stats_; }

  /// Times gate `g` (owned) was functionally evaluated or sampled — the
  /// "evaluation frequency" that pre-simulation partitioning measures
  /// (paper §III). Counts work performed, including rolled-back work.
  std::uint32_t eval_count(GateId g) const;

  /// Committed output changes of gate `g` (owned) — each is one potential
  /// cross-block message should `g`'s net be cut, the per-net weight the
  /// activity-weighted partitioners minimize. Deliberately counts *all*
  /// changes, not just exported ones: a count of actual sends would be
  /// biased by whatever partition produced it (interior hot nets would
  /// look free to cut). Includes changes later cancelled by rollback.
  std::uint32_t change_count(GateId g) const;

  /// Smallest gate delay among exported gates: the lookahead a conservative
  /// engine may promise on this block's outgoing channels.
  std::uint32_t export_lookahead() const { return bp_->export_lookahead; }

  /// Checkpoint every k-th batch in the modelled cost (BatchStats.checkpoint);
  /// k > 1 requires SaveMode::Incremental. The undo log is unaffected.
  void set_save_interval(std::uint32_t k);

  /// Earliest pending *wire* event time (kTickInf if none) — the clock-free
  /// internal frontier that anchors adaptive lookahead's wire_dist term.
  /// Requires BlockOptions::track_lookahead.
  Tick next_wire_time();

  /// Time of the next clock edge this block will process (kTickInf when the
  /// block has no DFFs or the next edge falls at/after the horizon). Derived
  /// from the last processed batch time: valid for conservative execution,
  /// which processes batches in increasing time order.
  Tick next_clock_time() const;

  std::span<const GateId> owned() const {
    return {bp_->to_global.data(), bp_->n_owned};
  }

 private:
  enum class UndoKind : std::uint8_t {
    WireValue,   // restore values_[a] = old value b
    Projected,   // restore projected_[a] = old value b
    QueuePush,   // erase event with seq u
    QueuePop,    // re-push stored event
  };
  struct UndoEntry {
    UndoKind kind;
    std::uint32_t a = 0;   // local gate index
    Logic4 b = Logic4::X;  // old value
    Event event;           // for QueuePop / QueuePush (seq)
  };
  struct BatchUndo {
    Tick time;
    std::uint32_t first;   // first index into undo_log_
    std::uint32_t count;
    std::uint32_t trace_len;
    WaveHash wave_before;
  };
  struct FullSnapshot {
    Tick time;
    std::vector<Logic4> values;
    std::vector<Logic4> projected;
    std::vector<Event> queue;
    std::uint64_t seq_counter;
    std::uint32_t trace_len;
    WaveHash wave;
  };

  bool is_owned_local(std::uint32_t li) const { return li < bp_->n_owned; }

  void init_from_plan();
  void schedule(Tick when, std::uint32_t li, Logic4 v, EventKind kind);
  void log_wire(std::uint32_t li, Logic4 old_value);
  void log_projected(std::uint32_t li, Logic4 old_value);
  void apply_wire(std::uint32_t li, Logic4 v, Tick t);
  void take_full_snapshot(Tick t);

  std::shared_ptr<const SimPlan> plan_;
  const BlockPlan* bp_;                      // this block's compiled view
  const EvalTables4* tables_;
  BlockOptions opts_;
  SaveMode save_;

  std::vector<Logic4> values_;               // by local index
  std::vector<Logic4> projected_;            // by local index (owned only)
  std::vector<std::uint32_t> eval_counts_;   // by local index (owned only)
  std::vector<std::uint32_t> change_counts_;    // by local index (owned only)
  LadderQueue queue_;                        // pooled, allocation-free hot path
  std::uint64_t seq_counter_ = 0;

  // Adaptive-lookahead tracking (track_lookahead only): min-heap of pending
  // wire-event times, lazily pruned against the last processed batch time.
  std::priority_queue<Tick, std::vector<Tick>, std::greater<>> wire_heap_;
  Tick last_processed_ = 0;

  // Sparse-checkpoint accounting (cost model only; see BatchStats.checkpoint).
  std::uint32_t save_interval_ = 1;
  std::uint32_t batch_counter_ = 0;

  std::vector<Event> scratch_;               // popped events of current batch

  // Scratch for phase C deduplication (local indices).
  std::vector<std::uint32_t> eval_mark_;     // by local index
  std::uint32_t eval_epoch_ = 0;
  std::vector<std::uint32_t> eval_list_;

  // Rollback history.
  std::vector<UndoEntry> undo_log_;
  std::vector<BatchUndo> undo_batches_;
  std::vector<FullSnapshot> snapshots_;
  bool in_batch_ = false;

  WaveHash wave_;
  Trace trace_;
  std::uint32_t committed_trace_len_ = 0;
  EngineStats stats_;
};

}  // namespace plsim
