#include "core/block.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace plsim {

namespace {
std::shared_ptr<const SimPlan> make_single_plan(
    const Circuit& circuit, std::span<const GateId> owned,
    std::span<const GateId> exported) {
  std::vector<std::vector<GateId>> ob(1), ex(1);
  ob[0].assign(owned.begin(), owned.end());
  ex[0].assign(exported.begin(), exported.end());
  return SimPlan::build(circuit, ob, ex);
}
}  // namespace

BlockSimulator::BlockSimulator(std::shared_ptr<const SimPlan> plan,
                               std::uint32_t block, const BlockOptions& opts)
    : plan_(std::move(plan)),
      bp_(&plan_->block(block)),
      tables_(&eval_tables4()),
      opts_(opts),
      save_(opts.save) {
  PLSIM_CHECK(opts_.horizon > 0, "BlockSimulator: horizon must be positive");
  PLSIM_CHECK(opts_.clock_period >= 1, "BlockSimulator: bad clock period");
  PLSIM_CHECK(!opts_.track_lookahead || save_ == SaveMode::None,
              "BlockSimulator: track_lookahead requires SaveMode::None");
  init_from_plan();
}

void BlockSimulator::set_save_interval(std::uint32_t k) {
  PLSIM_CHECK(k >= 1, "set_save_interval: interval must be >= 1");
  PLSIM_CHECK(k == 1 || save_ == SaveMode::Incremental,
              "set_save_interval: sparse checkpoints are Incremental-only");
  save_interval_ = k;
}

Tick BlockSimulator::next_wire_time() {
  PLSIM_CHECK(opts_.track_lookahead,
              "next_wire_time: track_lookahead is off");
  // Lazy prune: batches are processed in increasing time order and gate
  // delays are >= 1, so every heap entry <= last_processed_ is stale.
  while (!wire_heap_.empty() && wire_heap_.top() <= last_processed_)
    wire_heap_.pop();
  return wire_heap_.empty() ? kTickInf : wire_heap_.top();
}

Tick BlockSimulator::next_clock_time() const {
  if (bp_->dffs.empty()) return kTickInf;
  const Tick base = last_processed_ - (last_processed_ % opts_.clock_period);
  const Tick next = tick_add(base, opts_.clock_period);
  return next >= opts_.horizon ? kTickInf : next;
}

BlockSimulator::BlockSimulator(const Circuit& circuit,
                               std::span<const GateId> owned,
                               std::span<const GateId> exported,
                               const BlockOptions& opts)
    : BlockSimulator(make_single_plan(circuit, owned, exported), 0, opts) {}

void BlockSimulator::init_from_plan() {
  values_.assign(bp_->init_values.begin(), bp_->init_values.end());
  projected_.assign(values_.begin(), values_.begin() + bp_->n_owned);
  eval_counts_.assign(bp_->n_owned, 0);
  change_counts_.assign(bp_->n_owned, 0);
  eval_mark_.assign(bp_->n_local, 0);

  if (!bp_->dffs.empty() && opts_.clock_period < opts_.horizon) {
    queue_.push(Event{opts_.clock_period, kNoGate, Logic4::X, EventKind::Clock,
                      seq_counter_++});
  }
}

std::uint32_t BlockSimulator::eval_count(GateId g) const {
  const std::uint32_t li = bp_->to_local[g];
  PLSIM_CHECK(li != BlockPlan::kNotLocal && li < bp_->n_owned,
              "eval_count: gate not owned by this block");
  return eval_counts_[li];
}

std::uint32_t BlockSimulator::change_count(GateId g) const {
  const std::uint32_t li = bp_->to_local[g];
  PLSIM_CHECK(li != BlockPlan::kNotLocal && li < bp_->n_owned,
              "change_count: gate not owned by this block");
  return change_counts_[li];
}

Logic4 BlockSimulator::value(GateId g) const {
  const std::uint32_t li = bp_->to_local[g];
  PLSIM_CHECK(li != BlockPlan::kNotLocal,
              "BlockSimulator::value: gate not in scope");
  return values_[li];
}

void BlockSimulator::harvest_values(std::vector<Logic4>& into) const {
  for (std::uint32_t i = 0; i < bp_->n_owned; ++i)
    into[bp_->to_global[i]] = values_[i];
}

void BlockSimulator::log_wire(std::uint32_t li, Logic4 old_value) {
  if (save_ == SaveMode::Incremental)
    undo_log_.push_back({UndoKind::WireValue, li, old_value, {}});
}

void BlockSimulator::log_projected(std::uint32_t li, Logic4 old_value) {
  if (save_ == SaveMode::Incremental)
    undo_log_.push_back({UndoKind::Projected, li, old_value, {}});
}

void BlockSimulator::schedule(Tick when, std::uint32_t li, Logic4 v,
                              EventKind kind) {
  if (when >= opts_.horizon) return;
  if (opts_.track_lookahead && kind == EventKind::Wire) wire_heap_.push(when);
  const Event e{when, li, v, kind, seq_counter_++};
  queue_.push(e);
  if (save_ == SaveMode::Incremental)
    undo_log_.push_back({UndoKind::QueuePush, 0, Logic4::X, e});
}

void BlockSimulator::take_full_snapshot(Tick t) {
  FullSnapshot snap;
  snap.time = t;
  snap.values = values_;
  snap.projected = projected_;
  queue_.collect(snap.queue);  // non-destructive, per-time FIFO order
  snap.seq_counter = seq_counter_;
  snap.trace_len = static_cast<std::uint32_t>(trace_.size());
  snap.wave = wave_;
  stats_.save_bytes += snap.values.size() * sizeof(Logic4) +
                       snap.projected.size() * sizeof(Logic4) +
                       snap.queue.size() * sizeof(Event) + sizeof(FullSnapshot);
  snapshots_.push_back(std::move(snap));
}

void BlockSimulator::apply_wire(std::uint32_t li, Logic4 v, Tick t) {
  log_wire(li, values_[li]);
  values_[li] = v;
  if (is_owned_local(li)) {
    wave_.add(bp_->to_global[li], t, static_cast<std::uint8_t>(v));
    if (opts_.record_trace)
      trace_.push_back({t, bp_->to_global[li], v});
  }
  // Precompiled mark set: owned combinational consumers only, in circuit
  // fanout order (DFFs sample on clock edges, never on fanin changes).
  for (std::uint32_t ls : bp_->fanouts(li)) {
    if (eval_mark_[ls] != eval_epoch_) {
      eval_mark_[ls] = eval_epoch_;
      eval_list_.push_back(ls);
    }
  }
}

BatchStats BlockSimulator::process_batch(Tick t,
                                         std::span<const Message> externals,
                                         std::vector<Message>& out) {
  PLSIM_ASSERT(!in_batch_);
  in_batch_ = true;
  PLSIM_ASSERT(t < opts_.horizon);
  PLSIM_ASSERT(t <= queue_.next_time());

  const std::uint32_t undo_first = static_cast<std::uint32_t>(undo_log_.size());
  const std::uint32_t trace_len = static_cast<std::uint32_t>(trace_.size());
  const WaveHash wave_before = wave_;
  if (save_ == SaveMode::Full) take_full_snapshot(t);

  BatchStats bs;
  bs.checkpoint = batch_counter_ % save_interval_ == 0;
  ++batch_counter_;
  const std::size_t out_before = out.size();

  ++eval_epoch_;
  eval_list_.clear();

  scratch_.clear();
  queue_.pop_all_at(t, scratch_);
  if (save_ == SaveMode::Incremental)
    for (const Event& e : scratch_)
      undo_log_.push_back({UndoKind::QueuePop, 0, Logic4::X, e});

  // Phase A: clock edge — sample every owned DFF with pre-t values.
  bool clock_edge = false;
  for (const Event& e : scratch_)
    if (e.kind == EventKind::Clock) clock_edge = true;
  if (clock_edge) {
    for (std::size_t i = 0; i < bp_->dffs.size(); ++i) {
      const std::uint32_t li = bp_->dffs[i];
      const Logic4 q = z_to_x(values_[bp_->dff_d[i]]);
      ++bs.dff_samples;
      ++eval_counts_[li];
      if (q != projected_[li]) {
        log_projected(li, projected_[li]);
        projected_[li] = q;
        const BlockPlan::Rec& rec = bp_->recs[li];
        const Tick when = tick_add(t, rec.delay);
        schedule(when, li, q, EventKind::Wire);
        ++change_counts_[li];
        if (rec.exported && when < opts_.horizon)
          out.push_back(Message{when, bp_->to_global[li], q});
      }
    }
    schedule(tick_add(t, opts_.clock_period), kNoGate, Logic4::X,
             EventKind::Clock);
  }

  // Phase B: apply all wire changes at t. Internal events already carry
  // local indices; external messages are translated on the boundary.
  for (const Event& e : scratch_) {
    if (e.kind != EventKind::Wire) continue;
    apply_wire(e.gate, e.value, t);
    ++bs.wire_events;
  }
  for (const Message& m : externals) {
    PLSIM_ASSERT(m.time == t);
    const std::uint32_t li = bp_->to_local[m.gate];
    PLSIM_ASSERT(li != BlockPlan::kNotLocal);
    apply_wire(li, m.value, t);
    ++bs.wire_events;
  }

  // Phase C: evaluate each affected owned gate once, gathering operands
  // straight from the partition-local value array through the compiled
  // fanin index list.
  for (const std::uint32_t li : eval_list_) {
    const BlockPlan::Rec& rec = bp_->recs[li];
    const Logic4 nv = plan_eval4_gather(
        *tables_, rec.op, values_.data(),
        bp_->fanin_locals.data() + rec.fanin_off, rec.fanin_count);
    ++bs.evaluations;
    ++eval_counts_[li];
    if (nv != projected_[li]) {
      log_projected(li, projected_[li]);
      projected_[li] = nv;
      const Tick when = tick_add(t, rec.delay);
      schedule(when, li, nv, EventKind::Wire);
      ++change_counts_[li];
      if (rec.exported && when < opts_.horizon)
        out.push_back(Message{when, bp_->to_global[li], nv});
    }
  }

  bs.messages_out = static_cast<std::uint32_t>(out.size() - out_before);
  if (save_ == SaveMode::Incremental) {
    bs.undo_entries = static_cast<std::uint32_t>(undo_log_.size() - undo_first);
    undo_batches_.push_back(
        {t, undo_first, bs.undo_entries, trace_len, wave_before});
    stats_.undo_entries += bs.undo_entries;
  } else if (save_ == SaveMode::Full) {
    bs.save_bytes = snapshots_.back().values.size() +
                    snapshots_.back().projected.size() +
                    snapshots_.back().queue.size() * sizeof(Event);
  }

  stats_.wire_events += bs.wire_events;
  stats_.evaluations += bs.evaluations;
  stats_.dff_samples += bs.dff_samples;
  stats_.messages += bs.messages_out;
  ++stats_.batches;

  last_processed_ = t;
  in_batch_ = false;
  return bs;
}

BlockSimulator::RollbackStats BlockSimulator::rollback_to(Tick t) {
  PLSIM_CHECK(save_ != SaveMode::None,
              "rollback_to: state saving is disabled");
  RollbackStats rs;
  if (save_ == SaveMode::Incremental) {
    while (!undo_batches_.empty() && undo_batches_.back().time >= t) {
      const BatchUndo& bu = undo_batches_.back();
      ++rs.batches;
      rs.entries += bu.count;
      for (std::uint32_t i = bu.first + bu.count; i-- > bu.first;) {
        const UndoEntry& u = undo_log_[i];
        switch (u.kind) {
          case UndoKind::WireValue: values_[u.a] = u.b; break;
          case UndoKind::Projected: projected_[u.a] = u.b; break;
          case UndoKind::QueuePush: {
            // The undo log is consistent: an event pushed by an undone batch
            // is either still pending or was re-inserted by a later (also
            // undone) batch's QueuePop entry — cancel must find it.
            const bool found = queue_.cancel(u.event);
            PLSIM_ASSERT(found);
            break;
          }
          case UndoKind::QueuePop: queue_.push(u.event); break;
        }
      }
      trace_.resize(bu.trace_len);
      wave_ = bu.wave_before;
      undo_log_.resize(bu.first);
      undo_batches_.pop_back();
      ++stats_.rolled_back_batches;
    }
  } else {
    // Full snapshots: restore the earliest snapshot with time >= t.
    std::size_t target = snapshots_.size();
    while (target > 0 && snapshots_[target - 1].time >= t) --target;
    if (target == snapshots_.size()) return rs;
    const FullSnapshot& snap = snapshots_[target];
    rs.batches = static_cast<std::uint32_t>(snapshots_.size() - target);
    rs.bytes = snap.values.size() + snap.projected.size() +
               snap.queue.size() * sizeof(Event);
    values_ = snap.values;
    projected_ = snap.projected;
    queue_.clear();
    for (const Event& e : snap.queue) queue_.push(e);
    seq_counter_ = snap.seq_counter;
    trace_.resize(snap.trace_len);
    wave_ = snap.wave;
    stats_.rolled_back_batches += snapshots_.size() - target;
    snapshots_.resize(target);
  }
  ++stats_.rollbacks;
  return rs;
}

std::size_t BlockSimulator::fossil_collect(Tick gvt) {
  if (save_ == SaveMode::Incremental) {
    std::size_t n = 0;
    while (n < undo_batches_.size() && undo_batches_[n].time < gvt) ++n;
    if (n == 0) return 0;
    const std::uint32_t cut = undo_batches_[n - 1].first +
                              undo_batches_[n - 1].count;
    undo_log_.erase(undo_log_.begin(), undo_log_.begin() + cut);
    undo_batches_.erase(undo_batches_.begin(), undo_batches_.begin() + n);
    for (auto& bu : undo_batches_) bu.first -= cut;
    return n;
  }
  if (save_ == SaveMode::Full) {
    std::size_t n = 0;
    while (n < snapshots_.size() && snapshots_[n].time < gvt) ++n;
    snapshots_.erase(snapshots_.begin(), snapshots_.begin() + n);
    return n;
  }
  return 0;
}

}  // namespace plsim
