#include "core/packed_block.hpp"

#include "util/error.hpp"

namespace plsim {

PackedBlockSimulator::PackedBlockSimulator(
    std::shared_ptr<const PackedPlan> plan, std::uint32_t block,
    const PackedBlockOptions& opts)
    : plan_(std::move(plan)),
      bp_(&plan_->plan().block(block)),
      opts_(opts) {
  PLSIM_CHECK(opts_.horizon > 0,
              "PackedBlockSimulator: horizon must be positive");
  PLSIM_CHECK(opts_.clock_period >= 1, "PackedBlockSimulator: bad period");

  const auto init = plan_->block_init(block);
  values_.assign(init.begin(), init.end());
  projected_.assign(init.begin(), init.begin() + bp_->n_owned);
  eval_mark_.assign(bp_->n_local, 0);
  if (opts_.lane_waves) lane_waves_.resize(kPackedLanes);

  if (!bp_->dffs.empty() && opts_.clock_period < opts_.horizon)
    queue_.push(PEvent{opts_.clock_period, seq_counter_++, kNoGate, {}, 0,
                       EventKind::Clock});
}

PackedWord PackedBlockSimulator::value(GateId g) const {
  const std::uint32_t li = bp_->to_local[g];
  PLSIM_CHECK(li != BlockPlan::kNotLocal,
              "PackedBlockSimulator::value: gate not in scope");
  return values_[li];
}

void PackedBlockSimulator::harvest_values(std::vector<PackedWord>& into) const {
  for (std::uint32_t i = 0; i < bp_->n_owned; ++i)
    into[bp_->to_global[i]] = values_[i];
}

void PackedBlockSimulator::schedule(Tick when, std::uint32_t li, PackedWord v,
                                    std::uint64_t lanes, EventKind kind) {
  if (when >= opts_.horizon) return;
  queue_.push(PEvent{when, seq_counter_++, li, v, lanes, kind});
}

void PackedBlockSimulator::apply_wire(std::uint32_t li, PackedWord v,
                                      std::uint64_t lanes, Tick t) {
  values_[li] = v;
  if (li < bp_->n_owned && opts_.lane_waves) {
    // Only the lanes that actually changed carry a per-lane change record —
    // exactly the events a scalar simulation of that lane would apply.
    const GateId g = bp_->to_global[li];
    std::uint64_t m = lanes;
    while (m) {
      const unsigned l = static_cast<unsigned>(__builtin_ctzll(m));
      m &= m - 1;
      lane_waves_[l].add(
          g, t, static_cast<std::uint8_t>(packed_get_lane(v, l)));
    }
  }
  for (std::uint32_t ls : bp_->fanouts(li)) {
    if (eval_mark_[ls] != eval_epoch_) {
      eval_mark_[ls] = eval_epoch_;
      eval_list_.push_back(ls);
    }
  }
}

BatchStats PackedBlockSimulator::process_batch(
    Tick t, std::span<const PackedMessage> externals,
    std::vector<PackedMessage>& out) {
  PLSIM_ASSERT(t < opts_.horizon);
  PLSIM_ASSERT(t <= next_internal_time());

  BatchStats bs;
  const std::size_t out_before = out.size();

  ++eval_epoch_;
  eval_list_.clear();

  scratch_.clear();
  while (!queue_.empty() && queue_.top().time == t) {
    scratch_.push_back(queue_.top());
    queue_.pop();
  }

  // Phase A: clock edge — sample every owned DFF with pre-t word values.
  bool clock_edge = false;
  for (const PEvent& e : scratch_)
    if (e.kind == EventKind::Clock) clock_edge = true;
  if (clock_edge) {
    for (std::size_t i = 0; i < bp_->dffs.size(); ++i) {
      const std::uint32_t li = bp_->dffs[i];
      // The packed plane cannot represent Z, so z_to_x is the identity here.
      const PackedWord q = values_[bp_->dff_d[i]];
      ++bs.dff_samples;
      const std::uint64_t changed = packed_diff(q, projected_[li]);
      if (changed) {
        projected_[li] = q;
        const BlockPlan::Rec& rec = bp_->recs[li];
        const Tick when = tick_add(t, rec.delay);
        schedule(when, li, q, changed, EventKind::Wire);
        if (rec.exported && when < opts_.horizon)
          out.push_back(PackedMessage{when, bp_->to_global[li], q, changed});
      }
    }
    schedule(tick_add(t, opts_.clock_period), kNoGate, {}, 0, EventKind::Clock);
  }

  // Phase B: apply all wire changes at t.
  for (const PEvent& e : scratch_) {
    if (e.kind != EventKind::Wire) continue;
    apply_wire(e.gate, e.value, e.lanes, t);
    ++bs.wire_events;
  }
  for (const PackedMessage& m : externals) {
    PLSIM_ASSERT(m.time == t);
    const std::uint32_t li = bp_->to_local[m.gate];
    PLSIM_ASSERT(li != BlockPlan::kNotLocal);
    apply_wire(li, m.value, m.lanes, t);
    ++bs.wire_events;
  }

  // Phase C: evaluate each affected owned gate once, word at a time.
  for (const std::uint32_t li : eval_list_) {
    const BlockPlan::Rec& rec = bp_->recs[li];
    const PackedWord nv = packed_eval_gather(
        rec.op, values_.data(), bp_->fanin_locals.data() + rec.fanin_off,
        rec.fanin_count);
    ++bs.evaluations;
    const std::uint64_t changed = packed_diff(nv, projected_[li]);
    if (changed) {
      projected_[li] = nv;
      const Tick when = tick_add(t, rec.delay);
      schedule(when, li, nv, changed, EventKind::Wire);
      if (rec.exported && when < opts_.horizon)
        out.push_back(PackedMessage{when, bp_->to_global[li], nv, changed});
    }
  }

  bs.messages_out = static_cast<std::uint32_t>(out.size() - out_before);
  stats_.wire_events += bs.wire_events;
  stats_.evaluations += bs.evaluations;
  stats_.dff_samples += bs.dff_samples;
  stats_.messages += bs.messages_out;
  ++stats_.batches;
  return bs;
}

}  // namespace plsim
