#pragma once
// PackedBlockSimulator: the 64-lane packed counterpart of BlockSimulator —
// event-driven evaluation of one block of a partitioned circuit where every
// signal carries a PackedWord (64 independent 3-valued simulation lanes)
// instead of one Logic4.
//
// It reproduces BlockSimulator's timestamp-batch semantics exactly, word at
// a time:
//   phase A  on a clock edge, every owned DFF samples its D word using
//            pre-t values and schedules Q at t + delay(dff);
//   phase B  all wire changes at t (internal events and external packed
//            messages) are applied;
//   phase C  affected owned combinational gates are evaluated once each
//            through the packed word kernels; a word whose value changed in
//            *any* lane is scheduled at t + delay(gate) (and exported as a
//            PackedMessage when the gate is exported).
//
// Per-lane fidelity: an event's `lanes` mask records which lanes actually
// changed relative to the projection at schedule time. Lanes outside the
// mask are rewritten with their unchanged value (harmless — evaluation is a
// pure function per lane), and only masked lanes contribute to the per-lane
// waveform digests. This makes every lane of a packed run bit-identical —
// values *and* WaveHash — to a scalar golden run of that lane's stimulus
// (tests/packed_test.cpp, PackedGoldenLanes).
//
// No rollback support: the packed plane serves throughput-oriented
// executors (sequential golden, synchronous-style multi-block drivers, the
// oblivious engine, the fault simulator); optimistic engines keep the
// scalar plane.

#include <memory>
#include <queue>
#include <span>
#include <vector>

#include "core/block.hpp"
#include "core/types.hpp"
#include "event/event.hpp"
#include "sim/packed.hpp"
#include "sim/plan.hpp"
#include "util/hash.hpp"

namespace plsim {

/// A time-stamped packed signal change crossing a block boundary. `lanes`
/// marks the lanes whose value actually changed (see header comment).
struct PackedMessage {
  Tick time = 0;
  GateId gate = kNoGate;
  PackedWord value;
  std::uint64_t lanes = kAllLanes;

  friend bool operator==(const PackedMessage&, const PackedMessage&) = default;
};

struct PackedBlockOptions {
  Tick clock_period = 10;
  Tick horizon = 0;        ///< simulate changes strictly before this time
  bool lane_waves = false; ///< maintain the 64 per-lane waveform digests
};

class PackedBlockSimulator {
 public:
  PackedBlockSimulator(std::shared_ptr<const PackedPlan> plan,
                       std::uint32_t block, const PackedBlockOptions& opts);

  /// Earliest pending internal event time (kTickInf if none).
  Tick next_internal_time() const {
    return queue_.empty() ? kTickInf : queue_.top().time;
  }

  /// Process the single timestamp batch at time t (same preconditions as
  /// BlockSimulator::process_batch). Emitted messages are appended to `out`.
  BatchStats process_batch(Tick t, std::span<const PackedMessage> externals,
                           std::vector<PackedMessage>& out);

  PackedWord value(GateId g) const;
  bool in_scope(GateId g) const {
    return bp_->to_local[g] != BlockPlan::kNotLocal;
  }
  void harvest_values(std::vector<PackedWord>& into) const;

  /// Per-lane commutative waveform digests (empty unless opts.lane_waves).
  std::span<const WaveHash> lane_waves() const { return lane_waves_; }
  const EngineStats& stats() const { return stats_; }

 private:
  struct PEvent {
    Tick time = 0;
    std::uint64_t seq = 0;
    std::uint32_t gate = 0;  ///< local index (kNoGate for clock events)
    PackedWord value;
    std::uint64_t lanes = 0;
    EventKind kind = EventKind::Wire;
  };
  struct Later {
    bool operator()(const PEvent& a, const PEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void schedule(Tick when, std::uint32_t li, PackedWord v, std::uint64_t lanes,
                EventKind kind);
  void apply_wire(std::uint32_t li, PackedWord v, std::uint64_t lanes, Tick t);

  std::shared_ptr<const PackedPlan> plan_;
  const BlockPlan* bp_;
  PackedBlockOptions opts_;

  std::vector<PackedWord> values_;     // by local index
  std::vector<PackedWord> projected_;  // by local index (owned only)
  std::priority_queue<PEvent, std::vector<PEvent>, Later> queue_;
  std::uint64_t seq_counter_ = 0;

  std::vector<PEvent> scratch_;
  std::vector<std::uint32_t> eval_mark_;
  std::uint32_t eval_epoch_ = 0;
  std::vector<std::uint32_t> eval_list_;

  std::vector<WaveHash> lane_waves_;
  EngineStats stats_;
};

}  // namespace plsim
