#pragma once
// The "environment LP": primary-input changes derived from the stimulus.
//
// Every block whose scope contains a primary input receives that input's
// change stream as ordinary time-stamped messages known in advance — which is
// also why conservative engines get perfect lookahead on stimulus channels.

#include <vector>

#include "core/types.hpp"
#include "netlist/circuit.hpp"
#include "stim/stimulus.hpp"

namespace plsim {

/// All primary-input change messages of the run, sorted by (time, gate).
std::vector<Message> environment_messages(const Circuit& c,
                                          const Stimulus& stim);

/// The subset of environment messages a given block must observe.
template <typename ScopePred>
std::vector<Message> environment_messages_for(const Circuit& c,
                                              const Stimulus& stim,
                                              ScopePred in_scope) {
  std::vector<Message> all = environment_messages(c, stim);
  std::vector<Message> mine;
  for (const Message& m : all)
    if (in_scope(m.gate)) mine.push_back(m);
  return mine;
}

}  // namespace plsim
