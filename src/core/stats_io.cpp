#include "core/stats_io.hpp"

namespace plsim {

void record_stats(MetricsRun& run, const EngineStats& s) {
  run.metric("stats.wire_events", s.wire_events)
      .metric("stats.evaluations", s.evaluations)
      .metric("stats.dff_samples", s.dff_samples)
      .metric("stats.batches", s.batches)
      .metric("stats.messages", s.messages)
      .metric("stats.null_messages", s.null_messages)
      .metric("stats.barriers", s.barriers)
      .metric("stats.rollbacks", s.rollbacks)
      .metric("stats.rolled_back_batches", s.rolled_back_batches)
      .metric("stats.anti_messages", s.anti_messages)
      .metric("stats.gvt_rounds", s.gvt_rounds)
      .metric("stats.save_bytes", s.save_bytes)
      .metric("stats.undo_entries", s.undo_entries)
      .metric("stats.blocked_waits", s.blocked_waits)
      .metric("stats.deadlocks", s.deadlocks)
      .metric("stats.migrations", s.migrations);
}

void record_result(MetricsRun& run, const RunResult& r) {
  record_stats(run, r.stats);
  if (r.virtual_seconds > 0.0)
    run.metric("virtual_seconds", r.virtual_seconds);
  run.wall("seconds", r.wall_seconds);
}

}  // namespace plsim
