#include "core/environment.hpp"

#include <algorithm>

namespace plsim {

std::vector<Message> environment_messages(const Circuit& c,
                                          const Stimulus& stim) {
  std::vector<Message> msgs;
  // Constant drivers and DFF reset states announce themselves at t=0 so
  // cones fed only by them are evaluated at least once (a constant never
  // produces events, and a DFF that always re-samples 0 never does either).
  // A constant synthesized by the analyzer's folding pass announces at its
  // recorded onset instead of t=0, reproducing the folded cone's commit
  // time exactly (the wire holds X until then, per Circuit::initial_value).
  for (GateId g = 0; g < c.gate_count(); ++g) {
    switch (c.type(g)) {
      case GateType::Const0:
        msgs.push_back(Message{c.const_onset(g), g, Logic4::F});
        break;
      case GateType::Dff:
        msgs.push_back(Message{0, g, Logic4::F});
        break;
      case GateType::Const1:
        msgs.push_back(Message{c.const_onset(g), g, Logic4::T});
        break;
      default:
        break;
    }
  }
  const auto pis = c.primary_inputs();
  std::vector<Logic4> prev(pis.size(), Logic4::X);
  for (std::size_t k = 0; k < stim.vectors.size(); ++k) {
    const auto& vec = stim.vectors[k];
    const Tick t = stim.period * static_cast<Tick>(k);
    for (std::size_t i = 0; i < pis.size() && i < vec.size(); ++i) {
      if (vec[i] != prev[i]) {
        msgs.push_back(Message{t, pis[i], vec[i]});
        prev[i] = vec[i];
      }
    }
  }
  std::stable_sort(msgs.begin(), msgs.end(),
                   [](const Message& a, const Message& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.gate < b.gate;
                   });
  return msgs;
}

}  // namespace plsim
