#pragma once
// Shared types for simulation engines.

#include <cstdint>
#include <vector>

#include "logic/value.hpp"
#include "netlist/circuit.hpp"
#include "stim/trace.hpp"
#include "util/hash.hpp"

namespace plsim {

/// Saturating Tick addition. Tick is unsigned, so a raw `t + delay` near the
/// top of the range wraps around to a *small* value — which then passes every
/// `>= horizon` clamp and re-enters the schedule in the simulated past,
/// breaking causality silently. Any sum that would reach or pass kTickInf
/// saturates to kTickInf instead (kTickInf already means "never"). Engine and
/// VP code must use this for every timestamp advance; the plsim lint pass
/// (tools/lint_plsim.py, rule `tick-add`) enforces it.
constexpr Tick tick_add(Tick a, Tick b) {
  return a >= kTickInf - b ? kTickInf : a + b;
}

/// A time-stamped signal change crossing a block (logical process) boundary —
/// the paper's "time stamped message to each fanout LP" (§II).
struct Message {
  Tick time = 0;
  GateId gate = kNoGate;
  Logic4 value = Logic4::X;

  friend bool operator==(const Message&, const Message&) = default;
};

/// State-saving policy for optimistic execution (paper §IV: "frequently only
/// the change in state is saved ... incremental state saving").
enum class SaveMode : std::uint8_t {
  None,         ///< no history (sequential / conservative / synchronous)
  Incremental,  ///< per-batch undo log
  Full,         ///< per-batch full copy of block state
};

/// Counters every engine reports; the union of what the four synchronization
/// families can produce.
struct EngineStats {
  std::uint64_t wire_events = 0;    ///< committed signal-change applications
  std::uint64_t evaluations = 0;    ///< gate functional evaluations
  std::uint64_t dff_samples = 0;    ///< DFF clock samplings
  std::uint64_t batches = 0;        ///< timestamp batches processed
  std::uint64_t messages = 0;       ///< cross-block signal messages
  std::uint64_t null_messages = 0;  ///< conservative null messages
  std::uint64_t barriers = 0;       ///< synchronous barrier episodes
  std::uint64_t rollbacks = 0;      ///< optimistic rollback episodes
  std::uint64_t rolled_back_batches = 0;
  std::uint64_t anti_messages = 0;
  std::uint64_t gvt_rounds = 0;
  std::uint64_t save_bytes = 0;     ///< bytes copied by state saving
  std::uint64_t undo_entries = 0;   ///< incremental-save log entries written
  std::uint64_t blocked_waits = 0;  ///< conservative input-waiting episodes
  std::uint64_t deadlocks = 0;      ///< detection/recovery episodes
  std::uint64_t migrations = 0;     ///< dynamic load-balancing block moves

  void merge(const EngineStats& o) {
    wire_events += o.wire_events;
    evaluations += o.evaluations;
    dff_samples += o.dff_samples;
    batches += o.batches;
    messages += o.messages;
    null_messages += o.null_messages;
    barriers += o.barriers;
    rollbacks += o.rollbacks;
    rolled_back_batches += o.rolled_back_batches;
    anti_messages += o.anti_messages;
    gvt_rounds += o.gvt_rounds;
    save_bytes += o.save_bytes;
    undo_entries += o.undo_entries;
    blocked_waits += o.blocked_waits;
    deadlocks += o.deadlocks;
    migrations += o.migrations;
  }
};

/// Outcome of a simulation run. Engines that execute the same circuit and
/// stimulus must agree on `final_values` and `wave` (and on `trace` when
/// recorded) — that is the cross-engine equivalence contract.
struct RunResult {
  std::vector<Logic4> final_values;  ///< indexed by GateId
  WaveHash wave;                     ///< commutative digest of committed changes
  EngineStats stats;
  Trace trace;                       ///< committed changes, if recording was on
  double wall_seconds = 0.0;         ///< host wall-clock time
  double virtual_seconds = 0.0;      ///< virtual-platform makespan (vp runs)
};

}  // namespace plsim
