// C8 — paper §V: "One problem that is of concern with the optimistic
// asynchronous algorithms is inconsistency in performance. Seemingly small
// variations in circumstances can trigger dramatic swings in performance
// results ... The synchronous algorithm does not seem to be prone to this
// type of behavior."
//
// Run synchronous and optimistic engines over many small perturbations
// (stimulus seeds and partition seeds) of one workload and report the
// spread (coefficient of variation) of the modelled speedup.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

namespace {

struct Spread {
  double mean = 0, cv = 0, lo = 0, hi = 0;
};

Spread spread(const std::vector<double>& xs) {
  Spread s;
  s.lo = xs[0];
  s.hi = xs[0];
  for (double x : xs) {
    s.mean += x;
    s.lo = std::min(s.lo, x);
    s.hi = std::max(s.hi, x);
  }
  s.mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.cv = std::sqrt(var / static_cast<double>(xs.size())) / s.mean;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchDriver driver("c8_instability", argc, argv);
  const Circuit c = scaled_circuit(6000, 21);
  constexpr std::uint32_t kProcs = 8;

  std::vector<double> sync_speedups, tw_aggr, tw_lazy;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    // Perturb everything a real deployment perturbs: test vectors, LP
    // mapping, and platform execution noise.
    const Stimulus stim = random_stimulus(c, 15, 0.3, seed * 101);
    const Partition p = partition_fm(c, kProcs, seed);
    VpConfig cfg;
    cfg.jitter_seed = seed * 7919;
    const SequentialCost seq = sequential_cost(c, stim, cfg.cost);
    sync_speedups.push_back(seq.work /
                            run_sync_vp(c, stim, p, cfg).makespan);
    tw_aggr.push_back(seq.work / run_timewarp_vp(c, stim, p, cfg).makespan);
    VpConfig lazy = cfg;
    lazy.lazy_cancellation = true;
    tw_lazy.push_back(seq.work /
                      run_timewarp_vp(c, stim, p, lazy).makespan);
  }

  const Spread ss = spread(sync_speedups);
  const Spread sa = spread(tw_aggr);
  const Spread sl = spread(tw_lazy);

  const auto record_spread = [&](const char* engine, const Spread& s) {
    driver.run()
        .label("engine", engine)
        .metric("mean_speedup", s.mean)
        .metric("min_speedup", s.lo)
        .metric("max_speedup", s.hi)
        .metric("coeff_of_variation", s.cv);
  };
  record_spread("synchronous", ss);
  record_spread("optimistic_aggressive", sa);
  record_spread("optimistic_lazy", sl);

  std::cout << "C8: performance stability across 16 perturbed runs "
               "(6000 gates, 8 processors)\n\n";
  Table table({"engine", "mean_speedup", "min", "max", "coeff_of_variation"});
  table.add_row({"synchronous", Table::fmt(ss.mean), Table::fmt(ss.lo),
                 Table::fmt(ss.hi), Table::fmt(ss.cv, 3)});
  table.add_row({"optimistic_aggressive", Table::fmt(sa.mean),
                 Table::fmt(sa.lo), Table::fmt(sa.hi), Table::fmt(sa.cv, 3)});
  table.add_row({"optimistic_lazy", Table::fmt(sl.mean), Table::fmt(sl.lo),
                 Table::fmt(sl.hi), Table::fmt(sl.cv, 3)});
  table.print(std::cout);
  std::cout << "\npaper: optimistic performance swings with small "
               "perturbations (higher coefficient of variation); synchronous "
               "is stable\n";
  return driver.finish();
}
