// A1 (extension, paper §VI): "the synchronous algorithm is being expanded to
// include many of the features found in asynchronous algorithms ... Positive
// results have been presented ... by Steinman and Noble et al."
//
// Bounded-window ("time bucket") synchronous execution: one barrier pair per
// lookahead window instead of per distinct event time. Sweep the delay
// heterogeneity at a fixed minimum delay (= lookahead): the wider the spread
// of event times, the more barriers the window amortizes.

#include <iostream>

#include "bench_main.hpp"
#include "netlist/builder.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

namespace {

// Rebuild `base` with delays uniform in [min_delay, min_delay + spread].
Circuit with_delays(const Circuit& base, std::uint32_t min_delay,
                    std::uint32_t spread, std::uint64_t seed) {
  Rng rng(seed);
  NetlistBuilder b;
  for (GateId g = 0; g < base.gate_count(); ++g) {
    b.add_gate(base.type(g), {}, std::string(base.name(g)));
    b.set_delay(g, min_delay + static_cast<std::uint32_t>(rng.uniform(spread + 1)));
  }
  for (GateId g = 0; g < base.gate_count(); ++g) {
    const auto fi = base.fanins(g);
    b.set_fanins(g, {fi.begin(), fi.end()});
  }
  for (GateId g : base.primary_outputs()) b.mark_output(g);
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchDriver driver("a1_time_buckets", argc, argv);
  const Circuit base = scaled_circuit(6000, 2);
  constexpr std::uint32_t kMinDelay = 4;  // = window width

  std::cout << "A1: bounded-window synchronous (lookahead " << kMinDelay
            << " ticks, 8 processors)\n\n";
  Table table({"delay_spread", "barriers_plain", "barriers_buckets",
               "speedup_plain", "speedup_buckets"});

  for (std::uint32_t spread : {0u, 2u, 4u, 8u, 16u}) {
    const Circuit c = with_delays(base, kMinDelay, spread, 5);
    const Stimulus stim = random_stimulus(c, 12, 0.3, 9, Tick(40));
    const Partition p = partition_fm(c, 8, 1);

    VpConfig plain;
    VpConfig buckets;
    buckets.sync_time_buckets = true;
    const SequentialCost seq = sequential_cost(c, stim, plain.cost);
    const VpResult a = run_sync_vp(c, stim, p, plain);
    const VpResult w = run_sync_vp(c, stim, p, buckets);
    record_result(driver.run()
                      .label("delay_spread", std::uint64_t{spread})
                      .label("mode", "plain"),
                  a, seq.work);
    record_result(driver.run()
                      .label("delay_spread", std::uint64_t{spread})
                      .label("mode", "buckets"),
                  w, seq.work);
    table.add_row({Table::fmt(static_cast<std::uint64_t>(spread)),
                   Table::fmt(a.stats.barriers),
                   Table::fmt(w.stats.barriers),
                   Table::fmt(seq.work / a.makespan),
                   Table::fmt(seq.work / w.makespan)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: with heterogeneous delays the window packs many "
               "event times behind one barrier pair — the bucketed column "
               "keeps its speedup while plain synchronous degrades\n";
  return driver.finish();
}
