// A3 (extension, paper §VI): "dynamic load balancing is being considered to
// react to variations in computational workload."
//
// Workload: an array of 32 independent modules (paper §II's hierarchical
// systems); each epoch a random subset of modules goes hot, so no static
// placement of the 32 module-LPs onto 8 processors is right for every epoch.
// The dynamic balancer re-measures per-LP load and moves the heaviest
// misplaced LPs, paying state-migration costs.

#include <iostream>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

int main(int argc, char** argv) {
  bench::BenchDriver driver("a3_dynamic_load", argc, argv);
  constexpr std::uint32_t kProcs = 8, kModules = 32;
  constexpr std::size_t kPerModule = 250;
  const Circuit c = module_array(kModules, kPerModule, 3);

  Partition p;
  p.n_blocks = kModules;
  p.block_of.resize(c.gate_count());
  for (GateId g = 0; g < c.gate_count(); ++g)
    p.block_of[g] = static_cast<std::uint32_t>(g / kPerModule);

  const std::size_t pis_per_module = c.primary_inputs().size() / kModules;

  std::cout << "A3: dynamic load balancing, 32 module-LPs on 8 processors, "
               "random hot subset per epoch\n\n";
  Table table({"epoch_cycles", "speedup_static", "speedup_dynamic",
               "migrations", "gain"});

  for (std::size_t epoch : {32u, 16u, 8u, 4u, 2u}) {
    const Stimulus stim = scattered_hotspot_stimulus(
        c, 64, 0.01, 0.8, 0.25, epoch, 7, 10, pis_per_module);

    VpConfig stat;
    stat.block_to_proc = round_robin_mapping(kModules, kProcs);
    VpConfig dyn = stat;
    dyn.sync_dynamic_remap = true;
    dyn.remap_interval = 15;

    const SequentialCost seq = sequential_cost(c, stim, stat.cost);
    const VpResult rs = run_sync_vp(c, stim, p, stat);
    const VpResult rd = run_sync_vp(c, stim, p, dyn);
    const double ss = seq.work / rs.makespan;
    const double sd = seq.work / rd.makespan;
    record_result(driver.run()
                      .label("epoch_cycles", std::uint64_t{epoch})
                      .label("mapping", "static"),
                  rs, seq.work);
    record_result(driver.run()
                      .label("epoch_cycles", std::uint64_t{epoch})
                      .label("mapping", "dynamic"),
                  rd, seq.work);
    table.add_row({Table::fmt(static_cast<std::uint64_t>(epoch)),
                   Table::fmt(ss), Table::fmt(sd),
                   Table::fmt(rd.stats.migrations),
                   Table::fmt((sd - ss) / ss * 100.0, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nexpected: remapping follows the hot set and beats every "
               "static placement while epochs are long enough to measure; "
               "very fast drift leaves the balancer reacting to stale loads "
               "and the gain shrinks\n";
  return driver.finish();
}
