// C3 — paper §IV: "The appropriateness of [the oblivious] algorithm is
// highly dependent upon the activity within a circuit. At low activity
// levels, redundant evaluations are an enormous overhead. At higher activity
// levels, the elimination of the event queue can lead to a performance
// advantage."
//
// Sweep circuit activity and compare the modelled cost of the sequential
// event-driven simulator against the oblivious levelized simulator, locating
// the crossover. Also reported: measured evaluation counts from real runs.

#include <iostream>

#include "bench_main.hpp"
#include "core/stats_io.hpp"
#include "netlist/generators.hpp"
#include "seq/golden.hpp"
#include "seq/oblivious.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

int main(int argc, char** argv) {
  bench::BenchDriver driver("c3_oblivious_crossover", argc, argv);
  const Circuit c = scaled_circuit(3000, 4);
  const CostModel cost;

  std::cout << "C3: event-driven vs oblivious cost as activity varies "
               "(3000 gates, 25 cycles)\n\n";
  Table table({"activity", "ev_evals", "obl_evals", "ev_cost", "obl_cost",
               "winner"});
  const double obl_cost = oblivious_sequential_cost(
      c, random_stimulus(c, 25, 0.5, 1), cost);

  for (double activity : {0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const Stimulus stim = random_stimulus(c, 25, activity, 11);
    const SequentialCost ev = sequential_cost(c, stim, cost);
    const RunResult golden = simulate_golden(c, stim);
    const ObliviousResult obl = simulate_oblivious(c, stim);
    record_result(driver.run()
                      .label("activity", activity)
                      .metric("obl_evals", obl.evaluations)
                      .metric("ev_cost", ev.work)
                      .metric("obl_cost", obl_cost),
                  golden);
    table.add_row({Table::fmt(activity),
                   Table::fmt(golden.stats.evaluations),
                   Table::fmt(obl.evaluations),
                   Table::fmt(ev.work),
                   Table::fmt(obl_cost),
                   ev.work < obl_cost ? "event-driven" : "oblivious"});
  }
  table.print(std::cout);
  std::cout << "\npaper: oblivious cost is activity-independent; "
               "event-driven wins at low activity, oblivious at high "
               "activity — the crossover is the table's winner flip\n";
  return driver.finish();
}
