// C7 — paper §III/§V: partitioning must balance computational load against
// communication volume; "an even distribution of LPs across the processors
// is insufficient to balance the computational workload if the evaluation
// frequency of individual LPs varies"; pre-simulation measures evaluation
// frequency for load balancing.
//
// Compare every partitioning heuristic on one workload: cut size, unit and
// activity-weighted balance, and the synchronous speedup each partition
// actually achieves on the virtual platform — then show the pre-simulation
// refinement closing the weighted-balance gap.

#include <iostream>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "seq/golden.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

int main(int argc, char** argv) {
  bench::BenchDriver driver("c7_partitioning", argc, argv);
  const Circuit c = scaled_circuit(8000, 12);
  const Stimulus stim = random_stimulus(c, 20, 0.3, 17);
  constexpr std::uint32_t kProcs = 8;

  const auto activity = presimulate_activity(c, stim, 10);
  const std::vector<std::uint32_t> weights(activity.begin(), activity.end());

  const VpConfig cfg;
  const SequentialCost seq = sequential_cost(c, stim, cfg.cost);

  std::cout << "C7: partitioning heuristics (8000 gates, 8 processors, "
               "synchronous engine)\n\n";
  Table table({"partitioner", "cut_edges", "balance", "weighted_balance",
               "sync_speedup"});

  auto report = [&](const std::string& name, const Partition& p) {
    const PartitionMetrics unit = evaluate_partition(c, p);
    const PartitionMetrics wtd = evaluate_partition(c, p, weights);
    const VpResult r = run_sync_vp(c, stim, p, cfg);
    record_result(driver.run()
                      .label("partitioner", name)
                      .metric("cut_edges", unit.cut_edges)
                      .metric("imbalance", unit.imbalance)
                      .metric("weighted_imbalance", wtd.imbalance),
                  r, seq.work);
    table.add_row({name, Table::fmt(unit.cut_edges),
                   Table::fmt(unit.imbalance), Table::fmt(wtd.imbalance),
                   Table::fmt(seq.work / r.makespan)});
  };

  for (const auto& np : standard_partitioners())
    report(np.name, np.run(c, kProcs, 1));

  // Pre-simulation refinement on top of the best cut-centric heuristic.
  const Partition fm = partition_fm(c, kProcs, 1);
  report("fm+presim", refine_with_activity(c, fm, activity));
  report("fm_weighted", partition_fm(c, kProcs, 1, weights));

  table.print(std::cout);
  std::cout << "\npaper: structure-aware heuristics (cones/KL/FM) cut far "
               "fewer nets than random; count balance != workload balance — "
               "the pre-simulation rows improve the weighted balance and the "
               "achieved speedup\n";
  return driver.finish();
}
