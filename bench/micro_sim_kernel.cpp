// M4 — engineering macrobenchmark: full event-driven simulation throughput
// of the golden implementations (ladder-backed BlockSimulator vs the
// templated sequential kernel under each pending-set policy), plus the
// oblivious and compiled sweeps, in committed events / gate-evaluations per
// second of host time.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include "analyze/opt.hpp"
#include "netlist/generators.hpp"
#include "seq/compiled.hpp"
#include "seq/golden.hpp"
#include "seq/oblivious.hpp"
#include "seq/packed_sim.hpp"
#include "sim/packed.hpp"
#include "stim/stimulus.hpp"

namespace {

using namespace plsim;

const Circuit& test_circuit() {
  static const Circuit c = scaled_circuit(5000, 1);
  return c;
}
const Stimulus& test_stim() {
  static const Stimulus s = random_stimulus(test_circuit(), 20, 0.3, 7);
  return s;
}

// BlockSimulator golden run (the pending set is the production LadderQueue).
void BM_GoldenBlock(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    const RunResult r = simulate_golden(test_circuit(), test_stim());
    events = r.stats.wire_events;
    benchmark::DoNotOptimize(r.final_values.data());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_GoldenBlock);

// Same golden run on the analyzer-optimized circuit (PlanOpt::Safe:
// constant folding + structural hashing + dead-gate sweep) — the before /
// after pair of EXPERIMENTS.md's optimization-reduction table.
void BM_GoldenBlockOpt(benchmark::State& state) {
  static const OptimizedCircuit opt = optimize_circuit(test_circuit(), {});
  std::uint64_t events = 0;
  for (auto _ : state) {
    const RunResult r = simulate_golden(opt.circuit, test_stim());
    events = r.stats.wire_events;
    benchmark::DoNotOptimize(r.final_values.data());
  }
  state.SetLabel(opt.stats.summary());
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_GoldenBlockOpt);

// Cost of the optimization passes themselves (paid once per plan compile).
void BM_OptimizeCircuit(benchmark::State& state) {
  for (auto _ : state) {
    const OptimizedCircuit o = optimize_circuit(test_circuit(), {});
    benchmark::DoNotOptimize(o.old_to_new.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          test_circuit().gate_count());
}
BENCHMARK(BM_OptimizeCircuit);

// The templated sequential kernel under each queue-selection knob value.
void BM_GoldenQueue(benchmark::State& state) {
  const QueueKind kind = static_cast<QueueKind>(state.range(0));
  state.SetLabel(std::string(queue_kind_name(kind)));
  std::uint64_t events = 0;
  for (auto _ : state) {
    const RunResult r = simulate_golden_queue(test_circuit(), test_stim(), kind);
    events = r.stats.wire_events;
    benchmark::DoNotOptimize(r.final_values.data());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_GoldenQueue)
    ->Arg(static_cast<int>(QueueKind::Ladder))
    ->Arg(static_cast<int>(QueueKind::Wheel))
    ->Arg(static_cast<int>(QueueKind::Heap));

void BM_Oblivious(benchmark::State& state) {
  std::uint64_t evals = 0;
  for (auto _ : state) {
    const ObliviousResult r = simulate_oblivious(test_circuit(), test_stim());
    evals = r.evaluations;
    benchmark::DoNotOptimize(r.final_values.data());
  }
  state.SetItemsProcessed(state.iterations() * evals);
}
BENCHMARK(BM_Oblivious);

void BM_Compiled64(benchmark::State& state) {
  const PackedVectors vecs =
      random_packed_vectors(test_circuit(), 20, 3);
  std::uint64_t evals = 0;
  for (auto _ : state) {
    const CompiledResult r = simulate_compiled(test_circuit(), vecs);
    evals = r.evaluations;
    benchmark::DoNotOptimize(r.final_values.data());
  }
  // 64 logical circuit copies per evaluation.
  state.SetItemsProcessed(state.iterations() * evals * 64);
}
BENCHMARK(BM_Compiled64);

// Packed golden: the event-driven kernel over 64 independent 3-valued lanes
// (one word per signal). Items are effective per-lane committed events —
// word events x 64, the apples-to-apples number against BM_GoldenBlock.
void BM_PackedGolden(benchmark::State& state) {
  static const PackedStimulus ps =
      random_packed_stimulus(test_circuit(), 20, 0.3, 7);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const PackedRunResult r = simulate_packed_golden(test_circuit(), ps);
    events = r.stats.wire_events;
    benchmark::DoNotOptimize(r.final_values.data());
  }
  state.SetItemsProcessed(state.iterations() * events * 64);
}
BENCHMARK(BM_PackedGolden);

// Packed levelized sweep — BM_Oblivious over 64 lanes at once.
void BM_PackedOblivious(benchmark::State& state) {
  static const PackedStimulus ps =
      random_packed_stimulus(test_circuit(), 20, 0.3, 7);
  std::uint64_t evals = 0;
  for (auto _ : state) {
    const PackedObliviousResult r =
        simulate_packed_oblivious(test_circuit(), ps);
    evals = r.evaluations;
    benchmark::DoNotOptimize(r.final_values.data());
  }
  state.SetItemsProcessed(state.iterations() * evals * 64);
}
BENCHMARK(BM_PackedOblivious);

}  // namespace

PLSIM_BENCHMARK_MAIN("micro_sim_kernel")
