#pragma once
// Shared driver for every harness in bench/: one place that understands the
// machine-readable metrics layer (util/metrics.hpp, schema plsim-bench-v1).
//
// Table harnesses:
//
//   int main(int argc, char** argv) {
//     plsim::bench::BenchDriver driver("fig1_speedup_vs_size", argc, argv);
//     ...
//     plsim::MetricsRun& row = driver.run();
//     row.label("gates", size).label("engine", "sync");
//     plsim::record_result(row, vp_result, seq.work);
//     ...
//     return driver.finish();
//   }
//
// Google-benchmark micro harnesses replace BENCHMARK_MAIN() with
// PLSIM_BENCHMARK_MAIN("micro_event_queue"): the console output is
// unchanged and every run is additionally captured as a MetricsRun (all
// timings under "wall.*" — host-dependent, excluded from regression
// comparison).
//
// JSON emission is controlled by either of:
//   --json <path>           exact output path (the flag is consumed and not
//                           seen by google-benchmark's own flag parser);
//   PLSIM_BENCH_JSON=1      write BENCH_<name>.json in the working directory;
//   PLSIM_BENCH_JSON=<dir>  write <dir>/BENCH_<name>.json.
// Without either, harnesses print their tables exactly as before.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "util/metrics.hpp"

namespace plsim::bench {

/// Resolve the JSON output path from argv/environment; consumed `--json
/// <path>` arguments are removed from argv (argc updated in place).
inline std::string resolve_json_path(const std::string& bench_name, int& argc,
                                     char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (!path.empty()) return path;

  const char* env = std::getenv("PLSIM_BENCH_JSON");
  if (env == nullptr || env[0] == '\0' ||
      (env[0] == '0' && env[1] == '\0'))
    return "";
  const std::string dir = env;
  if (dir == "1") return "BENCH_" + bench_name + ".json";
  return dir + "/BENCH_" + bench_name + ".json";
}

/// Context object for the table harnesses.
class BenchDriver {
 public:
  BenchDriver(std::string name, int& argc, char** argv)
      : registry_(std::move(name)),
        json_path_(resolve_json_path(registry_.bench(), argc, argv)) {}

  MetricsRegistry& registry() { return registry_; }
  MetricsRun& run() { return registry_.add_run(); }
  PhaseTimers::Scope phase(std::string_view name) {
    return registry_.phases().scope(name);
  }

  /// Write the JSON file if one was requested. Returns the process exit
  /// code: 0 normally, 1 when the write failed.
  int finish() {
    if (json_path_.empty()) return 0;
    std::string error;
    if (!registry_.write_file(json_path_, &error)) {
      std::cerr << registry_.bench() << ": " << error << "\n";
      return 1;
    }
    std::cerr << registry_.bench() << ": wrote " << json_path_ << "\n";
    return 0;
  }

 private:
  MetricsRegistry registry_;
  std::string json_path_;
};

/// Console reporter that additionally captures every google-benchmark run
/// into the metrics registry. Timings are host-dependent, so everything goes
/// under "wall.*"; the run identity (benchmark name) is the label.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(MetricsRegistry& registry) : registry_(registry) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      MetricsRun& row = registry_.add_run();
      row.label("benchmark", run.benchmark_name());
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      row.wall("iterations", static_cast<double>(run.iterations));
      row.wall("real_seconds_per_iter", run.real_accumulated_time / iters);
      row.wall("cpu_seconds_per_iter", run.cpu_accumulated_time / iters);
      for (const auto& [name, counter] : run.counters)
        row.wall(name, counter.value);
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  MetricsRegistry& registry_;
};

/// main() body for the micro harnesses.
inline int benchmark_main(const std::string& name, int argc, char** argv) {
  char arg0_default[] = "benchmark";
  char* args_default = arg0_default;
  if (argv == nullptr) {
    argc = 1;
    argv = &args_default;
  }
  MetricsRegistry registry(name);
  const std::string json_path = resolve_json_path(name, argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter(registry);
  {
    PhaseTimers::Scope total = registry.phases().scope("benchmark");
    ::benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  ::benchmark::Shutdown();
  if (!json_path.empty()) {
    std::string error;
    if (!registry.write_file(json_path, &error)) {
      std::cerr << name << ": " << error << "\n";
      return 1;
    }
    std::cerr << name << ": wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace plsim::bench

#define PLSIM_BENCHMARK_MAIN(name)                         \
  int main(int argc, char** argv) {                        \
    return plsim::bench::benchmark_main(name, argc, argv); \
  }
