// C13 — the trace -> partition feedback loop, measured end to end: run the
// F1 representative engines on the static FM partition with PLSIM_TRACE
// armed, decode the captures into an activity profile, repartition on the
// measured per-gate evaluation counts and per-net message counts, and rerun.
// The paper's §III/§VI thesis is that *dynamic* load balance and *active*
// cut traffic — not static gate counts — determine speedup; this harness
// reports the deltas that thesis predicts: cut traffic weighted by measured
// messages, conservative blocked time, synchronous barrier time, and the
// modelled speedup, side by side for the static and the activity-weighted
// partition of the same circuit.
//
// Everything runs on the virtual platform (deterministic virtual clocks),
// so all metrics — including the blocked/barrier time decoded from the
// trace captures — are bit-stable and golden-compared in CI.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/activity.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "trace/trace.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

namespace {

using VpRunner = VpResult (*)(const Circuit&, const Stimulus&,
                              const Partition&, const VpConfig&);

struct Family {
  const char* name;
  VpRunner run;
};

/// One VP run with tracing armed; decodes the capture it produced into an
/// activity profile (per-gate counts + blocked/barrier units) and deletes
/// the file.
ActivityProfile traced_run(const Family& fam, const Circuit& c,
                           const Stimulus& stim, const Partition& p,
                           const VpConfig& cfg, const std::string& base,
                           VpResult* out) {
  const std::uint32_t before =
      trace::run_counter().load(std::memory_order_relaxed);
  ::setenv("PLSIM_TRACE", (base + ":262144").c_str(), 1);
  *out = fam.run(c, stim, p, cfg);
  ::unsetenv("PLSIM_TRACE");
  const std::string path = trace::expected_numbered_path(base, before);
  ActivityProfile prof = activity_from_trace(c, path);
  std::remove(path.c_str());
  return prof;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchDriver driver("c13_activity_partition", argc, argv);
  constexpr std::uint32_t kProcs = 8;

  // One representative point of the F1 sweep: same circuit family, stimulus
  // and static partition as fig1_speedup_vs_size.cpp at size 2000.
  const Circuit c = scaled_circuit(2000, /*seed=*/1);
  const Stimulus stim = random_stimulus(c, 20, 0.25, 7);
  const Partition fm = partition_fm(c, kProcs, 1);

  VpConfig cfg;
  cfg.lazy_cancellation = true;
  const SequentialCost seq = sequential_cost(c, stim, cfg.cost);

  const Family families[] = {{"sync", &run_sync_vp},
                             {"conservative", &run_conservative_vp},
                             {"timewarp", &run_timewarp_vp}};

  std::cout << "C13: activity-weighted repartition, P = " << kProcs
            << ", gates = " << c.gate_count() << " (virtual platform)\n\n";
  Table table({"engine", "partition", "speedup", "cut_traffic", "messages",
               "stall_units"});

  for (const Family& fam : families) {
    auto timed = driver.phase(fam.name);

    // Pass 1: measured run on the static partition. Its own capture *is*
    // the profile pass 2 repartitions on — the feedback loop uses the
    // engine's real message pattern, not a presimulation estimate.
    VpResult stat;
    const ActivityProfile prof =
        traced_run(fam, c, stim, fm, cfg, "c13_static.bin", &stat);
    const auto w = compress_counts(prof.evals);
    const auto nw = compress_counts(prof.messages);
    const Partition ap = partition_with_activity(c, kProcs, 1, prof);

    // Pass 2: rerun on the activity-weighted partition; decode its capture
    // too so the blocked/barrier comparison is measured, not predicted.
    VpResult act;
    const ActivityProfile aprof =
        traced_run(fam, c, stim, ap, cfg, "c13_activity.bin", &act);

    const PartitionMetrics ms = evaluate_partition(c, fm, w, nw);
    const PartitionMetrics ma = evaluate_partition(c, ap, w, nw);

    const struct {
      const char* partition;
      const VpResult* r;
      const ActivityProfile* p;
      const PartitionMetrics* m;
    } passes[] = {{"static", &stat, &prof, &ms},
                  {"activity", &act, &aprof, &ma}};
    for (const auto& pass : passes) {
      const std::uint64_t stall =
          pass.p->blocked_units + pass.p->barrier_units;
      record_result(driver.run()
                        .label("engine", fam.name)
                        .label("partition", pass.partition)
                        .metric("cut_edges", pass.m->cut_edges)
                        .metric("cut_traffic", pass.m->cut_traffic)
                        .metric("weighted_imbalance", pass.m->imbalance)
                        .metric("blocked_units", pass.p->blocked_units)
                        .metric("barrier_units", pass.p->barrier_units),
                    *pass.r, seq.work);
      table.add_row({fam.name, pass.partition,
                     Table::fmt(seq.work / pass.r->makespan),
                     Table::fmt(pass.m->cut_traffic),
                     Table::fmt(pass.r->stats.messages), Table::fmt(stall)});
    }
  }
  table.print(std::cout);
  std::cout << "\npaper: the activity partition carries less cut traffic "
               "and stalls less; conservative engines gain the most\n";
  return driver.finish();
}
