// C12 — critical-path bound over the Figure 1 sweep: *explain* the figure,
// not just measure it. For every (size, partition) point of the F1 sweep the
// harness computes the causal critical path of the simulation (src/trace/
// critical_path.hpp) — the makespan of an idealized machine with unlimited
// processors, zero communication cost, and every batch at its best-case
// execution time — and overlays the resulting maximum achievable speedup on
// the measured per-family speedups.
//
// The bound is a hard invariant, not a trend: no executor can beat the
// causal dependency chains, so the harness *asserts* bound >= measured at
// every point and exits nonzero on violation. The interesting output is the
// gap: synchronous executions sit below the bound by their barrier spend,
// conservative ones by blocked waits and null messages, optimistic ones by
// rollbacks — exactly the decomposition tools/trace_summary.py extracts
// from a PLSIM_TRACE recording of the same runs.

#include <cstdint>
#include <iostream>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "trace/critical_path.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

int main(int argc, char** argv) {
  bench::BenchDriver driver("c12_critical_path", argc, argv);
  // The sweep must mirror fig1_speedup_vs_size.cpp exactly — same circuits,
  // stimuli, partitions and engine configuration — or the bound is being
  // compared against a different experiment.
  constexpr std::uint32_t kProcs = 8;
  const std::size_t sizes[] = {500, 1000, 2000, 5000, 10000, 20000, 40000};

  std::cout << "C12: critical-path bound vs measured speedup, P = " << kProcs
            << " (virtual platform)\n\n";
  Table table({"gates", "bound", "sync", "conservative", "optimistic",
               "cp_batches"});

  int violations = 0;
  for (std::size_t size : sizes) {
    auto timed = driver.phase("run");
    const Circuit c = scaled_circuit(size, /*seed=*/1);
    const Stimulus stim = random_stimulus(c, 20, 0.25, 7);
    const Partition p = partition_fm(c, kProcs, 1);

    VpConfig cfg;
    cfg.lazy_cancellation = true;
    const SequentialCost seq = sequential_cost(c, stim, cfg.cost);
    const VpResult sync = run_sync_vp(c, stim, p, cfg);
    const VpResult cons = run_conservative_vp(c, stim, p, cfg);
    const VpResult tw = run_timewarp_vp(c, stim, p, cfg);

    // Batches are costed at (1 - exec_jitter) x their modelled cost, the
    // minimum any noise draw can produce, so the bound dominates every
    // realized execution — not just the average one.
    const CriticalPathResult cp =
        analyze_critical_path(c, stim, p, cfg.cost, 1.0 - cfg.exec_jitter);

    const double sp_sync = seq.work / sync.makespan;
    const double sp_cons = seq.work / cons.makespan;
    const double sp_tw = seq.work / tw.makespan;
    for (const auto& [name, sp] :
         {std::pair<const char*, double>{"sync", sp_sync},
          {"conservative", sp_cons},
          {"optimistic", sp_tw}}) {
      if (sp > cp.bound_speedup) {
        std::cerr << "VIOLATION: " << name << " speedup " << sp
                  << " exceeds critical-path bound " << cp.bound_speedup
                  << " at " << size << " gates\n";
        ++violations;
      }
    }

    const std::uint64_t gates = size;
    driver.run()
        .label("gates", gates)
        .label("engine", "bound")
        .metric("cp_time", cp.cp_time)
        .metric("seq_work", cp.seq_work)
        .metric("bound_speedup", cp.bound_speedup)
        .metric("cp_batches", cp.cp_batches)
        .metric("graph_batches", cp.batches)
        .metric("graph_messages", cp.messages);
    record_result(driver.run()
                      .label("gates", gates)
                      .label("engine", "sync")
                      .metric("bound_speedup", cp.bound_speedup),
                  sync, seq.work);
    record_result(driver.run()
                      .label("gates", gates)
                      .label("engine", "conservative")
                      .metric("bound_speedup", cp.bound_speedup),
                  cons, seq.work);
    record_result(driver.run()
                      .label("gates", gates)
                      .label("engine", "timewarp")
                      .metric("bound_speedup", cp.bound_speedup),
                  tw, seq.work);

    table.add_row({Table::fmt(static_cast<std::uint64_t>(size)),
                   Table::fmt(cp.bound_speedup), Table::fmt(sp_sync),
                   Table::fmt(sp_cons), Table::fmt(sp_tw),
                   Table::fmt(cp.cp_batches)});
  }
  table.print(std::cout);
  std::cout << "\nbound = seq_work / critical-path time (unlimited "
               "processors, zero comm cost, best-case batch times);\n"
               "every measured point must sit at or below it — the gap is "
               "each family's synchronization spend\n";
  if (violations > 0) {
    std::cerr << violations << " bound violation(s)\n";
    return 1;
  }
  return driver.finish();
}
