// F1 — Figure 1 of the paper: reported speedup on 8 processors versus
// circuit-element count, one series per time-synchronization family
// (synchronous, conservative asynchronous, optimistic asynchronous).
//
// The paper's figure aggregates results from five research implementations
// on different machines; this harness regenerates the figure's *shape* by
// running one representative engine per family on the virtual platform over
// the ISCAS-profile scaling family. Expected shape (paper §V): conservative
// implementations report poor speedup at every size; synchronous and
// optimistic implementations perform well, improving with circuit size.

#include <iostream>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/activity.hpp"
#include "partition/algorithms.hpp"
#include "partition/schedule.hpp"
#include "stim/stimulus.hpp"
#include "trace/critical_path.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

int main(int argc, char** argv) {
  bench::BenchDriver driver("fig1_speedup_vs_size", argc, argv);
  constexpr std::uint32_t kProcs = 8;
  const std::size_t sizes[] = {500, 1000, 2000, 5000, 10000, 20000, 40000};

  std::cout << "F1: speedup vs circuit size, P = " << kProcs
            << " (virtual platform)\n\n";
  Table table({"gates", "events", "sync", "conservative", "optimistic"});
  Table atable({"gates", "traffic", "traffic(act)", "sync(act)",
                "conservative(act)", "optimistic(act)"});
  Table stable({"gates", "conservative(sched)", "optimistic(cp)", "bound"});

  for (std::size_t size : sizes) {
    auto timed = driver.phase("run");
    const Circuit c = scaled_circuit(size, /*seed=*/1);
    const Stimulus stim = random_stimulus(c, 20, 0.25, 7);
    const Partition p = partition_fm(c, kProcs, 1);

    // Trace -> partition feedback (paper §III/§VI): profile a short window,
    // then repartition on the measured per-gate evaluation counts and
    // per-net message counts before the measured run.
    const ActivityProfile prof = profile_activity(c, stim, 8);
    const Partition ap = partition_with_activity(c, kProcs, 1, prof);
    const auto aw = compress_counts(prof.evals);
    const auto anw = compress_counts(prof.messages);
    const PartitionMetrics ms = evaluate_partition(c, p, aw, anw);
    const PartitionMetrics ma = evaluate_partition(c, ap, aw, anw);

    // The surveyed optimistic implementations run optimized Time Warp
    // (incremental state saving + lazy cancellation; paper §IV/§V).
    VpConfig cfg;
    cfg.lazy_cancellation = true;
    const SequentialCost seq = sequential_cost(c, stim, cfg.cost);
    const VpResult sync = run_sync_vp(c, stim, p, cfg);
    const VpResult cons = run_conservative_vp(c, stim, p, cfg);
    const VpResult tw = run_timewarp_vp(c, stim, p, cfg);
    const VpResult async_ = run_sync_vp(c, stim, ap, cfg);
    const VpResult acons = run_conservative_vp(c, stim, ap, cfg);
    const VpResult atw = run_timewarp_vp(c, stim, ap, cfg);

    // Speculation-control series (ISSUE 9): conservative on the
    // cache-schedule-ordered partition with adaptive per-channel lookahead,
    // and Time Warp throttled by critical-path slack (off-path LPs get a
    // bounded optimism window and sparse checkpoints).
    const Partition sp = schedule_partition(c, p);
    VpConfig scfg = cfg;
    scfg.cons_adaptive_lookahead = true;
    const VpResult scons = run_conservative_vp(c, stim, sp, scfg);
    const CriticalPathResult cp = analyze_critical_path(c, stim, p, cfg.cost);
    const CpGuidance guide =
        derive_cp_guidance(cp, 2 * stim.period, 4, 0.25);
    VpConfig tcfg = cfg;
    tcfg.lp_optimism = guide.lp_optimism;
    tcfg.lp_save_interval = guide.lp_save_interval;
    const VpResult ttw = run_timewarp_vp(c, stim, p, tcfg);

    const std::uint64_t gates = size;
    record_result(driver.run()
                      .label("gates", gates)
                      .label("engine", "sync")
                      .metric("seq_events", seq.events),
                  sync, seq.work);
    record_result(driver.run()
                      .label("gates", gates)
                      .label("engine", "conservative")
                      .metric("seq_events", seq.events),
                  cons, seq.work);
    record_result(driver.run()
                      .label("gates", gates)
                      .label("engine", "timewarp")
                      .metric("seq_events", seq.events),
                  tw, seq.work);
    const struct {
      const char* name;
      const VpResult* r;
    } activity_runs[] = {
        {"sync", &async_}, {"conservative", &acons}, {"timewarp", &atw}};
    for (const auto& ar : activity_runs) {
      record_result(driver.run()
                        .label("gates", gates)
                        .label("engine", ar.name)
                        .label("partition", "activity")
                        .metric("seq_events", seq.events)
                        .metric("cut_traffic_static", ms.cut_traffic)
                        .metric("cut_traffic", ma.cut_traffic)
                        .metric("cut_edges", ma.cut_edges),
                    *ar.r, seq.work);
    }
    record_result(driver.run()
                      .label("gates", gates)
                      .label("engine", "conservative")
                      .label("variant", "scheduled_adaptive")
                      .metric("seq_events", seq.events),
                  scons, seq.work);
    record_result(driver.run()
                      .label("gates", gates)
                      .label("engine", "timewarp")
                      .label("variant", "cp_guided")
                      .metric("seq_events", seq.events)
                      .metric("bound_speedup", cp.bound_speedup),
                  ttw, seq.work);

    table.add_row({Table::fmt(static_cast<std::uint64_t>(size)),
                   Table::fmt(seq.events),
                   Table::fmt(seq.work / sync.makespan),
                   Table::fmt(seq.work / cons.makespan),
                   Table::fmt(seq.work / tw.makespan)});
    atable.add_row({Table::fmt(static_cast<std::uint64_t>(size)),
                    Table::fmt(ms.cut_traffic), Table::fmt(ma.cut_traffic),
                    Table::fmt(seq.work / async_.makespan),
                    Table::fmt(seq.work / acons.makespan),
                    Table::fmt(seq.work / atw.makespan)});
    stable.add_row({Table::fmt(static_cast<std::uint64_t>(size)),
                    Table::fmt(seq.work / scons.makespan),
                    Table::fmt(seq.work / ttw.makespan),
                    Table::fmt(cp.bound_speedup)});
  }
  table.print(std::cout);
  std::cout << "\nactivity-weighted repartition (profile 8 cycles, then "
               "rerun):\n";
  atable.print(std::cout);
  std::cout << "\nspeculation control (scheduled + adaptive-lookahead "
               "conservative; critical-path-throttled Time Warp):\n";
  stable.print(std::cout);
  std::cout << "\npaper: conservative < 2x at all sizes; synchronous and "
               "optimistic rise with size toward ~4-8x at 10^4+ elements\n";
  return driver.finish();
}
