// F1 — Figure 1 of the paper: reported speedup on 8 processors versus
// circuit-element count, one series per time-synchronization family
// (synchronous, conservative asynchronous, optimistic asynchronous).
//
// The paper's figure aggregates results from five research implementations
// on different machines; this harness regenerates the figure's *shape* by
// running one representative engine per family on the virtual platform over
// the ISCAS-profile scaling family. Expected shape (paper §V): conservative
// implementations report poor speedup at every size; synchronous and
// optimistic implementations perform well, improving with circuit size.

#include <iostream>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

int main(int argc, char** argv) {
  bench::BenchDriver driver("fig1_speedup_vs_size", argc, argv);
  constexpr std::uint32_t kProcs = 8;
  const std::size_t sizes[] = {500, 1000, 2000, 5000, 10000, 20000, 40000};

  std::cout << "F1: speedup vs circuit size, P = " << kProcs
            << " (virtual platform)\n\n";
  Table table({"gates", "events", "sync", "conservative", "optimistic"});

  for (std::size_t size : sizes) {
    auto timed = driver.phase("run");
    const Circuit c = scaled_circuit(size, /*seed=*/1);
    const Stimulus stim = random_stimulus(c, 20, 0.25, 7);
    const Partition p = partition_fm(c, kProcs, 1);

    // The surveyed optimistic implementations run optimized Time Warp
    // (incremental state saving + lazy cancellation; paper §IV/§V).
    VpConfig cfg;
    cfg.lazy_cancellation = true;
    const SequentialCost seq = sequential_cost(c, stim, cfg.cost);
    const VpResult sync = run_sync_vp(c, stim, p, cfg);
    const VpResult cons = run_conservative_vp(c, stim, p, cfg);
    const VpResult tw = run_timewarp_vp(c, stim, p, cfg);

    const std::uint64_t gates = size;
    record_result(driver.run()
                      .label("gates", gates)
                      .label("engine", "sync")
                      .metric("seq_events", seq.events),
                  sync, seq.work);
    record_result(driver.run()
                      .label("gates", gates)
                      .label("engine", "conservative")
                      .metric("seq_events", seq.events),
                  cons, seq.work);
    record_result(driver.run()
                      .label("gates", gates)
                      .label("engine", "timewarp")
                      .metric("seq_events", seq.events),
                  tw, seq.work);

    table.add_row({Table::fmt(static_cast<std::uint64_t>(size)),
                   Table::fmt(seq.events),
                   Table::fmt(seq.work / sync.makespan),
                   Table::fmt(seq.work / cons.makespan),
                   Table::fmt(seq.work / tw.makespan)});
  }
  table.print(std::cout);
  std::cout << "\npaper: conservative < 2x at all sizes; synchronous and "
               "optimistic rise with size toward ~4-8x at 10^4+ elements\n";
  return driver.finish();
}
