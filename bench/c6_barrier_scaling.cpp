// C6 — paper §V: synchronous algorithms "have difficulty scaling to large
// numbers of processors since the time required to perform the barrier
// synchronization grows with processor population."
//
// Processor sweep for the synchronous engine under central (O(P)) and
// combining-tree (O(log P)) barrier models, plus the fraction of the
// makespan spent in barriers.

#include <iostream>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

int main(int argc, char** argv) {
  bench::BenchDriver driver("c6_barrier_scaling", argc, argv);
  const Circuit c = scaled_circuit(20000, 9);
  const Stimulus stim = random_stimulus(c, 15, 0.3, 3);

  std::cout << "C6: synchronous scaling vs barrier implementation "
               "(20000 gates)\n\n";
  Table table({"procs", "speedup_tree", "speedup_central", "barrier_tree",
               "barrier_central", "barrier_frac_central"});

  for (std::uint32_t procs : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const Partition p = partition_fm(c, procs, 1);
    VpConfig tree;
    tree.cost.barrier_tree = true;
    VpConfig central;
    central.cost.barrier_tree = false;

    const SequentialCost seq = sequential_cost(c, stim, tree.cost);
    const VpResult rt = run_sync_vp(c, stim, p, tree);
    const VpResult rc = run_sync_vp(c, stim, p, central);

    // Barrier share of the central makespan: steps * 2 * cost / makespan.
    const double steps =
        static_cast<double>(rc.stats.barriers) / (2.0 * procs);
    const double barrier_time = steps * 2.0 * central.cost.barrier_cost(procs);

    record_result(driver.run()
                      .label("procs", std::uint64_t{procs})
                      .label("barrier", "tree")
                      .metric("barrier_cost", tree.cost.barrier_cost(procs)),
                  rt, seq.work);
    record_result(
        driver.run()
            .label("procs", std::uint64_t{procs})
            .label("barrier", "central")
            .metric("barrier_cost", central.cost.barrier_cost(procs))
            .metric("barrier_frac", barrier_time / rc.makespan),
        rc, seq.work);
    table.add_row({Table::fmt(static_cast<std::uint64_t>(procs)),
                   Table::fmt(seq.work / rt.makespan),
                   Table::fmt(seq.work / rc.makespan),
                   Table::fmt(tree.cost.barrier_cost(procs)),
                   Table::fmt(central.cost.barrier_cost(procs)),
                   Table::fmt(barrier_time / rc.makespan)});
  }
  table.print(std::cout);
  std::cout << "\npaper: the central barrier's linear cost caps synchronous "
               "speedup as P grows; the combining tree defers (but does not "
               "remove) the ceiling\n";
  return driver.finish();
}
