// C11 — paper §III: "Only one gate per LP can result in high overhead
// processing incoming messages, while only one LP per processor can result
// in unnecessarily blocked computation or high rollback overheads. As a
// result, the optimum granularity is somewhere between these two extremes."
//
// Fixed machine of 8 processors; partition the circuit into L blocks (LPs)
// for L/P in {1, 2, 4, 8, 16, 32} and map round-robin. Conservative blocking
// and optimistic rollback scope both shrink with finer LPs, while per-LP
// overheads grow — the optimum sits in between.

#include <iostream>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

int main(int argc, char** argv) {
  bench::BenchDriver driver("c11_granularity_lp", argc, argv);
  constexpr std::uint32_t kProcs = 8;
  const Circuit c = scaled_circuit(8000, 4);
  const Stimulus stim = random_stimulus(c, 15, 0.3, 11);

  std::cout << "C11: LPs per processor (8000 gates, 8 processors)\n\n";
  Table table({"lps_per_proc", "blocks", "cons_speedup", "tw_speedup",
               "tw_rollbacks", "tw_rolled_back_batches"});

  for (std::uint32_t per : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const std::uint32_t blocks = kProcs * per;
    const Partition p = partition_fm(c, blocks, 1);
    VpConfig cfg;
    cfg.lazy_cancellation = true;
    cfg.block_to_proc = round_robin_mapping(blocks, kProcs);
    const SequentialCost seq = sequential_cost(c, stim, cfg.cost);
    const VpResult co = run_conservative_vp(c, stim, p, cfg);
    const VpResult tw = run_timewarp_vp(c, stim, p, cfg);
    record_result(driver.run()
                      .label("lps_per_proc", std::uint64_t{per})
                      .label("engine", "conservative")
                      .metric("blocks", std::uint64_t{blocks}),
                  co, seq.work);
    record_result(driver.run()
                      .label("lps_per_proc", std::uint64_t{per})
                      .label("engine", "timewarp")
                      .metric("blocks", std::uint64_t{blocks}),
                  tw, seq.work);
    table.add_row({Table::fmt(static_cast<std::uint64_t>(per)),
                   Table::fmt(static_cast<std::uint64_t>(blocks)),
                   Table::fmt(seq.work / co.makespan),
                   Table::fmt(seq.work / tw.makespan),
                   Table::fmt(tw.stats.rollbacks),
                   Table::fmt(tw.stats.rolled_back_batches)});
  }
  table.print(std::cout);
  std::cout << "\npaper: the optimum LP granularity lies between the one-LP-"
               "per-processor and one-gate-per-LP extremes\n";
  return driver.finish();
}
