// M3 — engineering microbenchmark: IEEE-1164 9-valued operations (table
// lookups) vs the branchy 4-valued operators.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <vector>

#include "logic/logic9.hpp"
#include "util/rng.hpp"

namespace {

using namespace plsim;

void BM_Resolve9(benchmark::State& state) {
  Rng rng(5);
  std::vector<Logic9> values(4096);
  for (auto& v : values) v = static_cast<Logic9>(rng.uniform(9));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resolve9(values[i % values.size()], values[(i + 1) % values.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Resolve9);

void BM_And9(benchmark::State& state) {
  Rng rng(5);
  std::vector<Logic9> values(4096);
  for (auto& v : values) v = static_cast<Logic9>(rng.uniform(9));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        and9(values[i % values.size()], values[(i + 1) % values.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_And9);

void BM_And4(benchmark::State& state) {
  Rng rng(5);
  std::vector<Logic4> values(4096);
  for (auto& v : values) v = static_cast<Logic4>(rng.uniform(4));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        logic_and(values[i % values.size()], values[(i + 1) % values.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_And4);

}  // namespace

PLSIM_BENCHMARK_MAIN("micro_logic9")
