// A4 (paper §IV, and the Su & Seitz variants the survey cites [29]):
// conservative deadlock handling — avoidance via null messages versus
// detection and recovery via a circulating marker.
//
// With logic-simulation lookahead (one gate delay), the detection/recovery
// variant deadlocks at nearly every simulated time step; null messages trade
// those stalls for message traffic. Sweep lookahead to show both regimes.

#include <iostream>

#include "bench_main.hpp"
#include "netlist/builder.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

namespace {

Circuit scale_delays(const Circuit& base, std::uint32_t factor) {
  NetlistBuilder b;
  for (GateId g = 0; g < base.gate_count(); ++g) {
    b.add_gate(base.type(g), {}, std::string(base.name(g)));
    b.set_delay(g, base.delay(g) * factor);
  }
  for (GateId g = 0; g < base.gate_count(); ++g) {
    const auto fi = base.fanins(g);
    b.set_fanins(g, {fi.begin(), fi.end()});
  }
  for (GateId g : base.primary_outputs()) b.mark_output(g);
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchDriver driver("a4_deadlock_recovery", argc, argv);
  const Circuit base = scaled_circuit(4000, 8);

  std::cout << "A4: conservative deadlock handling (4000 gates, 8 "
               "processors)\n\n";
  Table table({"lookahead", "nulls", "speedup_nulls", "deadlocks",
               "speedup_recovery"});

  for (std::uint32_t lookahead : {1u, 4u, 16u}) {
    const Circuit c = scale_delays(base, lookahead);
    const Stimulus stim = random_stimulus(c, 12, 0.3, 5, Tick(64));
    const Partition p = partition_fm(c, 8, 1);

    VpConfig nulls;
    VpConfig recovery;
    recovery.cons_null_messages = false;

    const SequentialCost seq = sequential_cost(c, stim, nulls.cost);
    const VpResult rn = run_conservative_vp(c, stim, p, nulls);
    const VpResult rr = run_conservative_vp(c, stim, p, recovery);
    record_result(driver.run()
                      .label("lookahead", std::uint64_t{lookahead})
                      .label("mode", "null_messages"),
                  rn, seq.work);
    record_result(driver.run()
                      .label("lookahead", std::uint64_t{lookahead})
                      .label("mode", "recovery"),
                  rr, seq.work);
    table.add_row({Table::fmt(static_cast<std::uint64_t>(lookahead)),
                   Table::fmt(rn.stats.null_messages),
                   Table::fmt(seq.work / rn.makespan),
                   Table::fmt(rr.stats.deadlocks),
                   Table::fmt(seq.work / rr.makespan)});
  }
  table.print(std::cout);
  std::cout << "\npaper: with logic-sim lookahead both variants struggle; "
               "null messages pay in traffic, detection/recovery pays in "
               "global stalls at nearly every time step\n";
  return driver.finish();
}
