// C5 — paper §IV: "Gafni's lazy cancellation strategy reduces the impact of
// rollback ... if the right event had been calculated for the wrong reasons,
// the receiving processor is not inhibited because of excessive causality
// constraints."
//
// Compare aggressive vs lazy cancellation: anti-message traffic, rollback
// counts, and modelled speedup, across circuit sizes.

#include <iostream>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

int main(int argc, char** argv) {
  bench::BenchDriver driver("c5_cancellation", argc, argv);
  std::cout << "C5: aggressive vs lazy cancellation (Time Warp, 8 "
               "processors)\n\n";
  Table table({"gates", "speedup_aggr", "speedup_lazy", "antis_aggr",
               "antis_lazy", "rollbacks_aggr", "rollbacks_lazy"});

  for (std::size_t size : {1000u, 3000u, 8000u, 20000u}) {
    const Circuit c = scaled_circuit(size, 8);
    const Stimulus stim = random_stimulus(c, 15, 0.3, 13);
    const Partition p = partition_fm(c, 8, 1);

    VpConfig aggr;
    VpConfig lazy;
    lazy.lazy_cancellation = true;

    const SequentialCost seq = sequential_cost(c, stim, aggr.cost);
    const VpResult ra = run_timewarp_vp(c, stim, p, aggr);
    const VpResult rl = run_timewarp_vp(c, stim, p, lazy);

    record_result(driver.run()
                      .label("gates", std::uint64_t{size})
                      .label("cancellation", "aggressive"),
                  ra, seq.work);
    record_result(driver.run()
                      .label("gates", std::uint64_t{size})
                      .label("cancellation", "lazy"),
                  rl, seq.work);
    table.add_row({Table::fmt(static_cast<std::uint64_t>(size)),
                   Table::fmt(seq.work / ra.makespan),
                   Table::fmt(seq.work / rl.makespan),
                   Table::fmt(ra.stats.anti_messages),
                   Table::fmt(rl.stats.anti_messages),
                   Table::fmt(ra.stats.rollbacks),
                   Table::fmt(rl.stats.rollbacks)});
  }
  table.print(std::cout);
  std::cout << "\npaper: logic-gate events are frequently re-computed "
               "identically after a rollback, so lazy cancellation avoids "
               "nearly all anti-message traffic and the secondary rollbacks "
               "it causes\n";
  return driver.finish();
}
