// C2 — paper §IV/§V: conservative null-message overhead. "Deadlock
// prevention is usually accomplished via null messages"; none of the
// surveyed conservative implementations reported good performance.
//
// Sweep the lookahead (minimum gate delay) and measure the null-message
// ratio and resulting speedup, plus the channel-granularity ablation
// (per-wire null accounting, as in the surveyed systems, vs aggregated
// block-pair channels).

#include <iostream>

#include "bench_main.hpp"
#include "netlist/builder.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

namespace {

// Rebuild the same topology with every delay multiplied by `factor`:
// lookahead scales with the factor while event structure is preserved.
Circuit scale_delays(const Circuit& c, std::uint32_t factor) {
  NetlistBuilder b;
  for (GateId g = 0; g < c.gate_count(); ++g) {
    const GateId id = b.add_gate(c.type(g), {}, std::string(c.name(g)));
    b.set_delay(id, c.delay(g) * factor);
  }
  for (GateId g = 0; g < c.gate_count(); ++g) {
    const auto fi = c.fanins(g);
    b.set_fanins(g, {fi.begin(), fi.end()});
  }
  for (GateId g : c.primary_outputs()) b.mark_output(g);
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchDriver driver("c2_null_messages", argc, argv);
  const Circuit base = scaled_circuit(5000, 2);
  std::cout << "C2: conservative null-message overhead vs lookahead "
               "(5000 gates, 8 processors)\n\n";
  Table table({"lookahead", "nulls", "null_ratio", "speedup_wire",
               "speedup_aggregated"});

  // Fixed simulated-time horizon: scaling every gate delay by k scales the
  // conservative lookahead by k while the null-message chain still has to
  // cover the same number of ticks — so null traffic drops roughly as 1/k.
  for (std::uint32_t lookahead : {1u, 2u, 4u, 8u, 16u}) {
    const Circuit c = scale_delays(base, lookahead);
    const Stimulus stim = random_stimulus(c, 15, 0.3, 7, Tick(64));
    const Partition p = partition_fm(c, 8, 1);

    VpConfig wire;  // per-wire nulls (default)
    VpConfig agg;
    agg.cons_wire_channels = false;

    const SequentialCost seq = sequential_cost(c, stim, wire.cost);
    const VpResult rw = run_conservative_vp(c, stim, p, wire);
    const VpResult ra = run_conservative_vp(c, stim, p, agg);

    const double ratio =
        static_cast<double>(rw.stats.null_messages) /
        static_cast<double>(rw.stats.messages + rw.stats.null_messages);
    record_result(driver.run()
                      .label("lookahead", std::uint64_t{lookahead})
                      .label("channels", "wire")
                      .metric("null_ratio", ratio),
                  rw, seq.work);
    record_result(driver.run()
                      .label("lookahead", std::uint64_t{lookahead})
                      .label("channels", "aggregated"),
                  ra, seq.work);
    table.add_row({Table::fmt(static_cast<std::uint64_t>(lookahead)),
                   Table::fmt(rw.stats.null_messages),
                   Table::fmt(ratio),
                   Table::fmt(seq.work / rw.makespan),
                   Table::fmt(seq.work / ra.makespan)});
  }
  table.print(std::cout);
  std::cout << "\npaper: null overhead dominates at small lookahead; "
               "conservative speedup stays poor (the per-wire column) — "
               "channel aggregation (right column) is the later remedy\n";
  return driver.finish();
}
