// C14 — speculation control (ISSUE 9), measured on the virtual platform:
//
//   (A) Adaptive per-channel lookahead on the conservative engine. Classic
//       CMB promises carry one global export lookahead; the adaptive variant
//       (engines/lookahead.hpp) anchors each event root — pending wires,
//       unreceived channel input, stimulus, the next clock edge — at its own
//       per-channel distance table. The sweep runs register-boundary
//       pipelines (Figure-1 sizes, one stage per block): every cut wire
//       lands on a DFF D-pin, so no combinational receiving chain exists and
//       promises jump to the next clock edge instead of crawling one gate
//       delay per null round. The dense random F1 family is the measured
//       opposite: its distance tables collapse to one tick everywhere
//       (any-gate-to-any-gate cuts), leaving classic CMB no room — which is
//       exactly the paper's point about conservative methods on unstructured
//       circuits. Both runs are traced (PLSIM_TRACE) and decoded back into
//       summed Blocked span time — idle-until-arrival plus null protocol
//       service — so the reduction is *measured*, not predicted.
//
//   (B) Critical-path-guided Time Warp throttling. The causal-graph
//       analyzer (trace/critical_path.hpp) exports per-LP slack and work;
//       off-path LPs — positive slack and a work deficit against the
//       heaviest LP — get a bounded optimism window and sparse checkpoints,
//       on-path LPs run free. Measured on cone partitions of the two
//       largest Figure-1 circuits, whose one overloaded block gates the
//       makespan while the other seven race ahead and roll back; balanced
//       FM partitions classify as all-on-path and the guidance is a no-op
//       by construction (no regression risk).
//
// Everything is deterministic (virtual clocks, seeded jitter), so every
// metric — including the trace-decoded blocked time — is golden-compared.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/activity.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "trace/critical_path.hpp"
#include "trace/trace.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

namespace {

/// Register-boundary partition of pipeline(width, stages): block s owns
/// stage s's combinational cloud plus the *upstream* register row that
/// feeds it, so every cross-block wire is a cloud-output-to-DFF-D-pin edge.
/// Relies on the generator's deterministic gate order: inputs first, then
/// per stage a 3*width-gate cloud followed by a width-gate DFF row.
Partition stage_partition(const Circuit& c, std::uint32_t width,
                          std::uint32_t stages) {
  Partition p;
  p.n_blocks = stages;
  p.block_of.assign(c.gate_count(), 0);
  const std::uint32_t per_stage = 4 * width;
  for (GateId g = width; g < c.gate_count(); ++g) {
    const std::uint32_t idx = g - width;
    const std::uint32_t s = idx / per_stage;
    p.block_of[g] = idx % per_stage < 3 * width
                        ? s
                        : std::min(s + 1, stages - 1);
  }
  return p;
}

/// One traced conservative VP run; returns the summed Blocked span time
/// (virtual milli-units) decoded from the capture it produced.
std::uint64_t traced_blocked_units(const Circuit& c, const Stimulus& stim,
                                   const Partition& p, const VpConfig& cfg,
                                   const std::string& base, VpResult* out) {
  const std::uint32_t before =
      trace::run_counter().load(std::memory_order_relaxed);
  ::setenv("PLSIM_TRACE", (base + ":1048576").c_str(), 1);
  *out = run_conservative_vp(c, stim, p, cfg);
  ::unsetenv("PLSIM_TRACE");
  const std::string path = trace::expected_numbered_path(base, before);
  const ActivityProfile prof = activity_from_trace(c, path);
  std::remove(path.c_str());
  return prof.blocked_units;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchDriver driver("c14_speculation_control", argc, argv);
  constexpr std::uint32_t kStages = 8;

  VpConfig base;
  base.lazy_cancellation = true;

  // --- (A) conservative: classic vs adaptive lookahead, traced -------------
  std::cout << "C14.A: conservative blocked time, classic vs adaptive "
               "per-channel lookahead, register-boundary pipelines, P = "
            << kStages << " (virtual platform, traced)\n\n";
  Table atable({"gates", "blocked", "blocked(adapt)", "reduction", "nulls",
                "nulls(adapt)", "speedup", "speedup(adapt)"});

  for (std::uint32_t width : {16, 32, 64, 152}) {
    auto timed = driver.phase("cons");
    const Circuit c = pipeline(width, kStages, /*seed=*/1);
    const Stimulus stim = random_stimulus(c, 20, 0.25, 7);
    const Partition p = stage_partition(c, width, kStages);
    const SequentialCost seq = sequential_cost(c, stim, base.cost);

    VpConfig classic = base;
    VpConfig adaptive = base;
    adaptive.cons_adaptive_lookahead = true;

    VpResult rc, ra;
    const std::uint64_t bc =
        traced_blocked_units(c, stim, p, classic, "c14_classic.bin", &rc);
    const std::uint64_t ba =
        traced_blocked_units(c, stim, p, adaptive, "c14_adaptive.bin", &ra);

    const struct {
      const char* variant;
      const VpResult* r;
      std::uint64_t blocked;
    } passes[] = {{"classic", &rc, bc}, {"adaptive", &ra, ba}};
    for (const auto& pass : passes) {
      record_result(driver.run()
                        .label("section", "cons_lookahead")
                        .label("gates", static_cast<std::uint64_t>(c.gate_count()))
                        .label("variant", pass.variant)
                        .metric("blocked_units", pass.blocked),
                    *pass.r, seq.work);
    }
    const double red = bc > 0 ? 1.0 - static_cast<double>(ba) / bc : 0.0;
    atable.add_row({Table::fmt(static_cast<std::uint64_t>(c.gate_count())),
                    Table::fmt(bc), Table::fmt(ba),
                    Table::fmt(100.0 * red) + "%",
                    Table::fmt(rc.stats.null_messages),
                    Table::fmt(ra.stats.null_messages),
                    Table::fmt(seq.work / rc.makespan),
                    Table::fmt(seq.work / ra.makespan)});
  }
  atable.print(std::cout);

  // --- (B) Time Warp: free vs critical-path-guided throttle ----------------
  std::cout << "\nC14.B: Time Warp rollbacks, free vs critical-path-guided "
               "throttle (off-path LPs: bounded window + sparse "
               "checkpoints), cone partitions\n\n";
  Table btable({"gates", "rollbacks", "rollbacks(cp)", "undone",
                "undone(cp)", "speedup", "speedup(cp)", "bound"});

  for (std::size_t size : {10000, 40000}) {
    auto timed = driver.phase("tw");
    const Circuit c = scaled_circuit(size, /*seed=*/1);
    const Stimulus stim = random_stimulus(c, 20, 0.25, 7);
    const Partition p = partition_cones(c, kStages);
    const SequentialCost seq = sequential_cost(c, stim, base.cost);

    // Per-LP slack + work from the causal-graph replay; off-path LPs get a
    // one-clock-period window and 4-batch checkpoints.
    const CriticalPathResult cp =
        analyze_critical_path(c, stim, p, base.cost);
    const CpGuidance g =
        derive_cp_guidance(cp, /*window=*/stim.period,
                           /*save_interval=*/4, /*slack_threshold=*/0.25);

    VpConfig guided = base;
    guided.lp_optimism = g.lp_optimism;
    guided.lp_save_interval = g.lp_save_interval;

    VpResult rf = run_timewarp_vp(c, stim, p, base);
    VpResult rg = run_timewarp_vp(c, stim, p, guided);

    std::uint64_t throttled = 0;
    for (Tick w : g.lp_optimism) throttled += w > 0 ? 1 : 0;

    const struct {
      const char* variant;
      const VpResult* r;
    } passes[] = {{"free", &rf}, {"cp_guided", &rg}};
    for (const auto& pass : passes) {
      record_result(driver.run()
                        .label("section", "tw_throttle")
                        .label("gates", static_cast<std::uint64_t>(size))
                        .label("variant", pass.variant)
                        .metric("bound_speedup", cp.bound_speedup)
                        .metric("throttled_lps", throttled)
                        .metric("rolled_back_batches",
                                pass.r->stats.rolled_back_batches),
                    *pass.r, seq.work);
    }
    btable.add_row({Table::fmt(static_cast<std::uint64_t>(size)),
                    Table::fmt(rf.stats.rollbacks),
                    Table::fmt(rg.stats.rollbacks),
                    Table::fmt(rf.stats.rolled_back_batches),
                    Table::fmt(rg.stats.rolled_back_batches),
                    Table::fmt(seq.work / rf.makespan),
                    Table::fmt(seq.work / rg.makespan),
                    Table::fmt(cp.bound_speedup)});
  }
  btable.print(std::cout);
  std::cout << "\npaper: adaptive lookahead turns register-boundary cuts "
               "into clock-period promises and cuts traced blocked time; "
               "slack+work-guided throttling trades uncommittable "
               "speculation for less rolled-back work at identical "
               "makespan\n";
  return driver.finish();
}
