// M2 — engineering microbenchmark: functional evaluation throughput of the
// interpretive switch kernels (eval_gate4/eval_gate9), the compiled LUT
// kernels behind SimPlan (plan_eval4/plan_eval9 — the t_evaluate term the
// VP cost model is calibrated from), and the 64-lane bit-parallel system
// (the paper's data-parallelism substrate).

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <array>
#include <vector>

#include "logic/gates.hpp"
#include "logic/logic9.hpp"
#include "sim/packed.hpp"
#include "sim/tables.hpp"
#include "util/rng.hpp"

namespace {

using namespace plsim;

const GateType kTypes[] = {GateType::And, GateType::Nand, GateType::Or,
                           GateType::Nor, GateType::Xor,  GateType::Not};

void BM_EvalGate4(benchmark::State& state) {
  Rng rng(3);
  std::vector<Logic4> values(4096);
  for (auto& v : values)
    v = static_cast<Logic4>(rng.uniform(4));
  std::array<Logic4, 3> ins;
  std::size_t i = 0;
  for (auto _ : state) {
    const GateType t = kTypes[i % std::size(kTypes)];
    const std::size_t arity = (t == GateType::Not) ? 1 : 2;
    ins[0] = values[i % values.size()];
    ins[1] = values[(i * 7 + 1) % values.size()];
    benchmark::DoNotOptimize(eval_gate4(t, {ins.data(), arity}));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalGate4);

// Same mixed-op/arity stream as BM_EvalGate4, through the compiled tables —
// the ratio of the two is the t_evaluate speedup fed into src/vp/cost.cpp.
void BM_EvalPlan4(benchmark::State& state) {
  const EvalTables4& tb = eval_tables4();
  Rng rng(3);
  std::vector<Logic4> values(4096);
  for (auto& v : values)
    v = static_cast<Logic4>(rng.uniform(4));
  std::array<Logic4, 3> ins;
  std::size_t i = 0;
  for (auto _ : state) {
    const GateType t = kTypes[i % std::size(kTypes)];
    const std::size_t arity = (t == GateType::Not) ? 1 : 2;
    ins[0] = values[i % values.size()];
    ins[1] = values[(i * 7 + 1) % values.size()];
    benchmark::DoNotOptimize(plan_eval4(tb, t, ins.data(), arity));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalPlan4);

void BM_EvalGate9(benchmark::State& state) {
  Rng rng(3);
  std::vector<Logic9> values(4096);
  for (auto& v : values)
    v = static_cast<Logic9>(rng.uniform(9));
  std::array<Logic9, 3> ins;
  std::size_t i = 0;
  for (auto _ : state) {
    const GateType t = kTypes[i % std::size(kTypes)];
    const std::size_t arity = (t == GateType::Not) ? 1 : 2;
    ins[0] = values[i % values.size()];
    ins[1] = values[(i * 7 + 1) % values.size()];
    benchmark::DoNotOptimize(eval_gate9(t, {ins.data(), arity}));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalGate9);

void BM_EvalPlan9(benchmark::State& state) {
  const EvalTables9& tb = eval_tables9();
  Rng rng(3);
  std::vector<Logic9> values(4096);
  for (auto& v : values)
    v = static_cast<Logic9>(rng.uniform(9));
  std::array<Logic9, 3> ins;
  std::size_t i = 0;
  for (auto _ : state) {
    const GateType t = kTypes[i % std::size(kTypes)];
    const std::size_t arity = (t == GateType::Not) ? 1 : 2;
    ins[0] = values[i % values.size()];
    ins[1] = values[(i * 7 + 1) % values.size()];
    benchmark::DoNotOptimize(plan_eval9(tb, t, ins.data(), arity));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalPlan9);

void BM_EvalGate64(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::uint64_t> values(4096);
  for (auto& v : values) v = rng.next();
  std::array<std::uint64_t, 3> ins;
  std::size_t i = 0;
  for (auto _ : state) {
    const GateType t = kTypes[i % std::size(kTypes)];
    const std::size_t arity = (t == GateType::Not) ? 1 : 2;
    ins[0] = values[i % values.size()];
    ins[1] = values[(i * 7 + 1) % values.size()];
    benchmark::DoNotOptimize(eval_gate64(t, {ins.data(), arity}));
    ++i;
  }
  // 64 logical evaluations per call.
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EvalGate64);

// 64-lane 3-valued packed kernel (sim/packed.hpp): the word-at-a-time
// evaluation the packed golden/oblivious executors run on. Items are
// effective per-lane evaluations (x64 per call).
void BM_PackedEval3Gather(benchmark::State& state) {
  Rng rng(3);
  std::vector<PackedWord> values(4096);
  for (auto& w : values) {
    w.x = rng.next();
    w.v = rng.next() & ~w.x;  // keep the v & x == 0 invariant
  }
  const std::uint32_t fanin[3] = {0, 1, 2};
  std::array<PackedWord, 3> ins;
  std::size_t i = 0;
  for (auto _ : state) {
    const GateType t = kTypes[i % std::size(kTypes)];
    const std::size_t arity = (t == GateType::Not) ? 1 : 2;
    ins[0] = values[i % values.size()];
    ins[1] = values[(i * 7 + 1) % values.size()];
    benchmark::DoNotOptimize(packed_eval_gather(t, ins.data(), fanin, arity));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PackedEval3Gather);

// 64-lane 2-valued packed kernel — the fault plane's gather variant of
// eval_gate64 (no operand copy).
void BM_PackedEval2Gather(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::uint64_t> values(4096);
  for (auto& v : values) v = rng.next();
  const std::uint32_t fanin[3] = {0, 1, 2};
  std::array<std::uint64_t, 3> ins;
  std::size_t i = 0;
  for (auto _ : state) {
    const GateType t = kTypes[i % std::size(kTypes)];
    const std::size_t arity = (t == GateType::Not) ? 1 : 2;
    ins[0] = values[i % values.size()];
    ins[1] = values[(i * 7 + 1) % values.size()];
    benchmark::DoNotOptimize(
        packed2_eval_gather(t, ins.data(), fanin, arity));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PackedEval2Gather);

}  // namespace

PLSIM_BENCHMARK_MAIN("micro_gate_eval")
