// M2 — engineering microbenchmark: functional evaluation throughput in the
// 4-valued scalar system vs the 64-lane bit-parallel system (the paper's
// data-parallelism substrate).

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <array>
#include <vector>

#include "logic/gates.hpp"
#include "util/rng.hpp"

namespace {

using namespace plsim;

const GateType kTypes[] = {GateType::And, GateType::Nand, GateType::Or,
                           GateType::Nor, GateType::Xor,  GateType::Not};

void BM_EvalGate4(benchmark::State& state) {
  Rng rng(3);
  std::vector<Logic4> values(4096);
  for (auto& v : values)
    v = static_cast<Logic4>(rng.uniform(4));
  std::array<Logic4, 3> ins;
  std::size_t i = 0;
  for (auto _ : state) {
    const GateType t = kTypes[i % std::size(kTypes)];
    const std::size_t arity = (t == GateType::Not) ? 1 : 2;
    ins[0] = values[i % values.size()];
    ins[1] = values[(i * 7 + 1) % values.size()];
    benchmark::DoNotOptimize(eval_gate4(t, {ins.data(), arity}));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalGate4);

void BM_EvalGate64(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::uint64_t> values(4096);
  for (auto& v : values) v = rng.next();
  std::array<std::uint64_t, 3> ins;
  std::size_t i = 0;
  for (auto _ : state) {
    const GateType t = kTypes[i % std::size(kTypes)];
    const std::size_t arity = (t == GateType::Not) ? 1 : 2;
    ins[0] = values[i % values.size()];
    ins[1] = values[(i * 7 + 1) % values.size()];
    benchmark::DoNotOptimize(eval_gate64(t, {ins.data(), arity}));
    ++i;
  }
  // 64 logical evaluations per call.
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EvalGate64);

}  // namespace

PLSIM_BENCHMARK_MAIN("micro_gate_eval")
