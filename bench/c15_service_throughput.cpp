// C15 — the persistent simulation service (ISSUE 10), measured on the
// transport-free Service core (src/server/service.hpp):
//
//   (A) Cold vs warm job latency on a >=5k-gate circuit. The first job
//       compiles the full rig — multilevel partition, plan optimization,
//       routing, SimPlan — and parks it in the plan cache; every repeat job
//       instantiates fresh simulators on the shared immutable rig and skips
//       compilation. The bench asserts warm median < 0.5x cold (exits
//       nonzero otherwise) and golden-compares the cache counters that prove
//       the warm jobs never compiled. Warm results must be bit-identical to
//       the cold one (same wave digest).
//
//   (B) A 1000-job mixed replay — hot-key skew across 4 circuits, cold-key
//       churn, packed-plane oblivious sweeps, golden and fault jobs — pushed
//       through the sharded worker pool by 4 concurrent clients. Throughput
//       and p50/p95/p99 latency go under wall.* (host-dependent); the
//       deterministic outcome counts, distinct-compile count (cache misses)
//       and the digest-mismatch audit (identical requests must return
//       identical results) are golden-compared.
//
//   (C) Bounded behavior: LRU eviction under a capacity-2 plan cache cycling
//       three hot keys, and deterministic queue-full rejection — workers
//       paused, the queue filled to capacity, the overflow rejected with a
//       structured Overloaded error, then resumed and drained to completion.
//
// Latencies are host wall-clock (excluded from the golden comparison); every
// count in the golden is exact.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_main.hpp"
#include "parallel/guarded.hpp"
#include "parallel/threads.hpp"
#include "server/protocol.hpp"
#include "server/service.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace plsim;

namespace {

JobRequest hot_job(std::uint64_t gates, std::uint64_t circuit_seed,
                   const std::string& engine) {
  JobRequest req;
  req.circuit.kind = CircuitSpec::Kind::Generator;
  req.circuit.generator = "scaled";
  req.circuit.gates = gates;
  req.circuit.seed = circuit_seed;
  req.engine = engine;
  req.blocks = 4;
  req.stimulus.cycles = 6;
  return req;
}

/// Deterministic job for global index i — same class mix as tools/plsim_load
/// (hot-key skew, cold churn, packed oblivious, golden, fault).
JobRequest mixed_job(std::uint64_t i) {
  constexpr std::uint64_t kHotKeys = 4;
  Rng rng(mix64(0x6331356d6978ull ^ (i * 0x9e3779b97f4a7c15ull)));
  JobRequest req;
  req.id = i;
  req.blocks = 4;
  req.stimulus.cycles = 6;
  req.stimulus.seed = 1 + rng.uniform(4);
  const std::uint64_t cls = rng.uniform(100);
  if (cls < 55) {
    const std::uint64_t a = rng.uniform(kHotKeys);
    const std::uint64_t b = rng.uniform(kHotKeys);
    req.circuit.kind = CircuitSpec::Kind::Generator;
    req.circuit.generator = "scaled";
    req.circuit.gates = 2000;
    req.circuit.seed = 100 + std::min(a, b);
    const std::uint64_t e = rng.uniform(3);
    req.engine = e == 0 ? "sync" : e == 1 ? "conservative" : "timewarp";
  } else if (cls < 70) {
    req.circuit.kind = CircuitSpec::Kind::Generator;
    req.circuit.generator = "random";
    req.circuit.gates = 400;
    req.circuit.seed = 1000000 + i;
    req.engine = rng.uniform(2) == 0 ? "conservative" : "sync";
  } else if (cls < 82) {
    req.circuit.kind = CircuitSpec::Kind::Generator;
    req.circuit.generator = "scaled";
    req.circuit.gates = 1000;
    req.circuit.seed = 100 + rng.uniform(kHotKeys);
    req.engine = "oblivious";
    req.packed_plane = true;
  } else if (cls < 92) {
    req.circuit.kind = CircuitSpec::Kind::Builtin;
    req.circuit.builtin = rng.uniform(2) == 0 ? "c17" : "s27";
    req.engine = "golden";
  } else {
    req.circuit.kind = CircuitSpec::Kind::Generator;
    req.circuit.generator = "random";
    req.circuit.gates = 250;
    req.circuit.seed = 100 + rng.uniform(kHotKeys);
    req.engine = "fault";
  }
  return req;
}

std::uint64_t string_key(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  return h;
}

std::uint64_t request_identity(const JobRequest& r) {
  std::uint64_t k = r.circuit.content_key();
  k = hash_combine(k, string_key(r.engine));
  k = hash_combine(k, r.stimulus.seed);
  k = hash_combine(k, r.stimulus.cycles);
  k = hash_combine(k, r.blocks);
  return k;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * (idx - static_cast<double>(lo));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchDriver driver("c15_service_throughput", argc, argv);
  bool failed = false;

  // --- (A) cold vs warm: the plan cache skips compilation ------------------
  constexpr std::uint64_t kGates = 6000;
  constexpr unsigned kWarmRuns = 8;
  std::cout << "C15.A: cold vs warm job latency, scaled circuit ("
            << kGates << " gates requested), sync engine, P = 4\n\n";
  {
    auto timed = driver.phase("cold_warm");
    Service service(ServiceConfig{});
    const JobRequest req = hot_job(kGates, /*circuit_seed=*/7, "sync");

    WallTimer cold_timer;
    const JobResponse cold = service.execute_now(req);
    const double cold_s = cold_timer.seconds();
    if (!cold.ok || cold.cache != "miss") {
      std::cerr << "c15: cold job expected ok+miss, got cache=" << cold.cache
                << " error=" << cold.error << "\n";
      failed = true;
    }

    std::vector<double> warm_s;
    std::uint64_t warm_hits = 0, warm_identical = 0;
    for (unsigned i = 0; i < kWarmRuns; ++i) {
      WallTimer warm_timer;
      const JobResponse warm = service.execute_now(req);
      warm_s.push_back(warm_timer.seconds());
      warm_hits += warm.ok && warm.cache == "hit" ? 1 : 0;
      warm_identical += warm.wave_digest == cold.wave_digest ? 1 : 0;
    }
    std::sort(warm_s.begin(), warm_s.end());
    const double warm_med = percentile(warm_s, 0.5);
    const double ratio = cold_s > 0.0 ? warm_med / cold_s : 1.0;

    const ServiceMetrics m = service.metrics();
    Table table({"phase", "latency_ms", "plan_cache", "digest"});
    table.add_row({"cold", Table::fmt(cold_s * 1e3), "miss",
                   Table::fmt(cold.wave_digest)});
    table.add_row({"warm(med)", Table::fmt(warm_med * 1e3),
                   "hit x" + std::to_string(warm_hits),
                   Table::fmt(cold.wave_digest)});
    table.print(std::cout);
    std::cout << "\nwarm/cold ratio " << Table::fmt(ratio)
              << " (required < 0.5)\n";
    if (warm_hits != kWarmRuns || warm_identical != kWarmRuns) {
      std::cerr << "c15: warm jobs must all hit and match the cold digest\n";
      failed = true;
    }
    if (ratio >= 0.5) {
      std::cerr << "c15: warm median " << warm_med * 1e3 << "ms not < 0.5x cold "
                << cold_s * 1e3 << "ms\n";
      failed = true;
    }
    driver.run()
                      .label("section", "cold_warm")
                      .label("gates", cold.gate_count)
                      .metric("plan_misses", m.plan_cache.misses)
                      .metric("plan_hits", m.plan_cache.hits)
                      .metric("warm_identical", warm_identical)
                      .wall("cold_ms", cold_s * 1e3)
                      .wall("warm_med_ms", warm_med * 1e3)
                      .wall("warm_cold_ratio", ratio);
  }

  // --- (B) mixed 1000-job replay through the sharded pool ------------------
  constexpr std::uint64_t kJobs = 1000;
  constexpr unsigned kClients = 4;
  std::cout << "\nC15.B: " << kJobs << "-job mixed replay (hot-key skew, "
               "cold churn, packed, golden, fault), " << kClients
            << " concurrent clients, 2 shards x 2 workers\n\n";
  {
    auto timed = driver.phase("mixed");
    ServiceConfig cfg;
    cfg.plan_cache_capacity = 512;    // > distinct plan keys: no evictions,
    cfg.circuit_cache_capacity = 512; // so the miss counts are exact
    Service service(cfg);

    struct Outcome {
      double latency;
      bool ok;
      std::uint64_t key, digest;
    };
    Guarded<std::vector<Outcome>> collected;
    WallTimer total;
    run_on_threads(kClients, [&](unsigned tid) {
      std::vector<Outcome> local;
      for (std::uint64_t i = tid; i < kJobs; i += kClients) {
        const JobRequest req = mixed_job(i);
        WallTimer timer;
        const JobResponse resp = service.run(req);
        local.push_back({timer.seconds(), resp.ok, request_identity(req),
                         resp.wave_digest});
      }
      collected.with([&](std::vector<Outcome>& all) {
        all.insert(all.end(), local.begin(), local.end());
      });
    });
    const double wall = total.seconds();

    std::vector<Outcome> outcomes;
    collected.with([&](std::vector<Outcome>& all) { outcomes.swap(all); });
    std::uint64_t ok = 0, digest_mismatches = 0;
    std::vector<double> latencies;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
    for (const Outcome& o : outcomes) {
      latencies.push_back(o.latency);
      if (!o.ok) continue;
      ++ok;
      bool found = false;
      for (const auto& [k, d] : seen) {
        if (k != o.key) continue;
        found = true;
        if (d != o.digest) ++digest_mismatches;
        break;
      }
      if (!found) seen.emplace_back(o.key, o.digest);
    }
    std::sort(latencies.begin(), latencies.end());
    const double jobs_per_sec =
        wall > 0.0 ? static_cast<double>(outcomes.size()) / wall : 0.0;

    const ServiceMetrics m = service.metrics();
    Table table({"jobs", "ok", "jobs/sec", "p50_ms", "p95_ms", "p99_ms",
                 "compiles", "warm", "mismatches"});
    table.add_row({Table::fmt(static_cast<std::uint64_t>(outcomes.size())),
                   Table::fmt(ok), Table::fmt(jobs_per_sec),
                   Table::fmt(percentile(latencies, 0.50) * 1e3),
                   Table::fmt(percentile(latencies, 0.95) * 1e3),
                   Table::fmt(percentile(latencies, 0.99) * 1e3),
                   Table::fmt(m.plan_cache.misses),
                   Table::fmt(m.plan_cache.hits + m.plan_cache.joined),
                   Table::fmt(digest_mismatches)});
    table.print(std::cout);
    if (ok != kJobs || digest_mismatches != 0) {
      std::cerr << "c15: mixed replay expected " << kJobs
                << " ok and 0 digest mismatches\n";
      failed = true;
    }
    // hits vs joined split depends on thread interleaving; their sum (and the
    // miss count — distinct keys actually compiled) is deterministic.
    driver.run()
                      .label("section", "mixed")
                      .label("clients", static_cast<std::uint64_t>(kClients))
                      .metric("jobs", static_cast<std::uint64_t>(outcomes.size()))
                      .metric("ok", ok)
                      .metric("digest_mismatches", digest_mismatches)
                      .metric("plan_compiles", m.plan_cache.misses)
                      .metric("plan_warm", m.plan_cache.hits + m.plan_cache.joined)
                      .metric("plan_evictions", m.plan_cache.evictions)
                      .metric("circuit_parses", m.circuit_cache.misses)
                      .wall("seconds", wall)
                      .wall("jobs_per_sec", jobs_per_sec)
                      .wall("p50_ms", percentile(latencies, 0.50) * 1e3)
                      .wall("p95_ms", percentile(latencies, 0.95) * 1e3)
                      .wall("p99_ms", percentile(latencies, 0.99) * 1e3);
  }

  // --- (C) bounded behavior: LRU eviction + queue-full rejection -----------
  std::cout << "\nC15.C: capacity-2 plan cache cycling 3 hot keys (LRU "
               "eviction), then queue-full rejection with paused workers\n\n";
  {
    auto timed = driver.phase("bounded");
    ServiceConfig small;
    small.shards = 1;
    small.workers_per_shard = 1;
    small.queue_capacity = 4;
    small.plan_cache_capacity = 2;
    Service service(small);

    // Three keys through a two-slot cache, twice around: every access after
    // the first three evicts the least-recently-used plan and recompiles.
    std::uint64_t evict_ok = 0;
    for (unsigned round = 0; round < 2; ++round)
      for (std::uint64_t key = 0; key < 3; ++key)
        evict_ok += service.execute_now(hot_job(600, 200 + key, "sync")).ok;
    const CacheCounters after_cycle = service.metrics().plan_cache;

    service.pause();
    std::uint64_t accepted = 0, overloaded = 0, done_count_unused = 0;
    (void)done_count_unused;
    Guarded<std::uint64_t> completed;
    const auto on_done = [&completed](JobResponse) {
      completed.with([](std::uint64_t& n) { ++n; });
    };
    for (std::uint64_t i = 0; i < 10; ++i) {
      const Admit a = service.submit(hot_job(600, 200, "sync"), on_done);
      accepted += a == Admit::Accepted ? 1 : 0;
      overloaded += a == Admit::Overloaded ? 1 : 0;
    }
    service.resume();
    service.drain();
    std::uint64_t drained = 0;
    completed.with([&](std::uint64_t& n) { drained = n; });

    Table table({"cycle_ok", "compiles", "evictions", "accepted",
                 "overloaded", "drained"});
    table.add_row({Table::fmt(evict_ok), Table::fmt(after_cycle.misses),
                   Table::fmt(after_cycle.evictions), Table::fmt(accepted),
                   Table::fmt(overloaded), Table::fmt(drained)});
    table.print(std::cout);
    if (accepted != small.queue_capacity || drained != accepted) {
      std::cerr << "c15: expected exactly queue_capacity accepted jobs, all "
                   "drained after resume\n";
      failed = true;
    }
    driver.run()
                      .label("section", "bounded")
                      .metric("cycle_ok", evict_ok)
                      .metric("plan_compiles", after_cycle.misses)
                      .metric("plan_evictions", after_cycle.evictions)
                      .metric("accepted", accepted)
                      .metric("overloaded", overloaded)
                      .metric("drained", drained);
  }

  std::cout << "\npaper: a persistent service amortizes plan compilation "
               "across jobs — warm requests skip the partition/optimize/"
               "routing/plan pipeline entirely and answer from the hot rig\n";
  const int rc = driver.finish();
  return failed ? 1 : rc;
}
