// C9 — paper §VI: "for coarse timing granularity a synchronous algorithm is
// sufficient and for fine timing granularity an optimistic asynchronous
// algorithm is needed."
//
// Sweep the gate-delay spread (unit delay = coarse granularity; wide uniform
// delays = fine granularity, scattering events over many distinct times) and
// report all three engines. The crossover between the sync and optimistic
// columns is the claim.

#include <iostream>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

int main(int argc, char** argv) {
  bench::BenchDriver driver("c9_granularity", argc, argv);
  std::cout << "C9: timing granularity (10000 gates, 8 processors)\n\n";
  Table table({"delay_spread", "events_per_timestep", "sync", "conservative",
               "optimistic"});

  for (std::uint32_t spread : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const Circuit c = scaled_circuit(
        10000, 1, spread == 1 ? DelayMode::Unit : DelayMode::Uniform, spread);
    const Stimulus stim = random_stimulus(c, 15, 0.3, 7, Tick(10) * spread);
    const Partition p = partition_fm(c, 8, 1);

    VpConfig cfg;
    cfg.lazy_cancellation = true;
    const SequentialCost seq = sequential_cost(c, stim, cfg.cost);
    const VpResult sy = run_sync_vp(c, stim, p, cfg);
    const VpResult co = run_conservative_vp(c, stim, p, cfg);
    const VpResult tw = run_timewarp_vp(c, stim, p, cfg);

    // Simultaneity: committed events per distinct event time (sync steps).
    const double steps = static_cast<double>(sy.stats.barriers) / (2.0 * 8);
    const double per_step = static_cast<double>(seq.events) / steps;
    record_result(driver.run()
                      .label("delay_spread", std::uint64_t{spread})
                      .label("engine", "sync")
                      .metric("events_per_timestep", per_step),
                  sy, seq.work);
    record_result(driver.run()
                      .label("delay_spread", std::uint64_t{spread})
                      .label("engine", "conservative"),
                  co, seq.work);
    record_result(driver.run()
                      .label("delay_spread", std::uint64_t{spread})
                      .label("engine", "timewarp"),
                  tw, seq.work);
    table.add_row({Table::fmt(static_cast<std::uint64_t>(spread)),
                   Table::fmt(static_cast<double>(seq.events) / steps),
                   Table::fmt(seq.work / sy.makespan),
                   Table::fmt(seq.work / co.makespan),
                   Table::fmt(seq.work / tw.makespan)});
  }
  table.print(std::cout);
  std::cout << "\npaper: coarse granularity (left rows, many simultaneous "
               "events) favours synchronous; fine granularity starves the "
               "global-clock steps and optimistic takes over\n";
  return driver.finish();
}
