// M1 — engineering microbenchmark: pending-event set implementations.
// The timing wheel's O(1) scheduling is the classic logic-simulation trick;
// the binary heap pays O(log n) but supports the tombstone deletion that
// optimistic rollback needs; the ladder queue keeps the wheel's O(1)
// scheduling while adding pooled (allocation-free) storage, O(1) occupancy
// tracking and exact cancellation — the production pending set.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include "event/heap_queue.hpp"
#include "event/ladder_queue.hpp"
#include "event/timing_wheel.hpp"
#include "util/rng.hpp"

namespace {

using namespace plsim;

constexpr int kHot = 512;  // events kept in flight

void BM_HeapQueue(benchmark::State& state) {
  const std::uint64_t max_delay = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    HeapQueue q;
    std::uint64_t seq = 0;
    for (int i = 0; i < kHot; ++i)
      q.push(Event{rng.uniform(max_delay), GateId(i), Logic4::T,
                   EventKind::Wire, seq++});
    std::vector<Event> batch;
    while (!q.empty()) {
      const Tick t = q.next_time();
      batch.clear();
      q.pop_all_at(t, batch);
      for (const Event& e : batch) {
        if (seq < 20000)
          q.push(Event{e.time + 1 + rng.uniform(max_delay), e.gate, e.value,
                       EventKind::Wire, seq++});
      }
    }
    benchmark::DoNotOptimize(seq);
  }
}
BENCHMARK(BM_HeapQueue)->Arg(4)->Arg(64)->Arg(1024);

void BM_TimingWheel(benchmark::State& state) {
  const std::uint64_t max_delay = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    TimingWheel q(256);
    std::uint64_t seq = 0;
    for (int i = 0; i < kHot; ++i)
      q.push(Event{rng.uniform(max_delay), GateId(i), Logic4::T,
                   EventKind::Wire, seq++});
    std::vector<Event> batch;
    while (!q.empty()) {
      const Tick t = q.next_time();
      batch.clear();
      q.pop_all_at(t, batch);
      for (const Event& e : batch) {
        if (seq < 20000)
          q.push(Event{e.time + 1 + rng.uniform(max_delay), e.gate, e.value,
                       EventKind::Wire, seq++});
      }
    }
    benchmark::DoNotOptimize(seq);
  }
}
BENCHMARK(BM_TimingWheel)->Arg(4)->Arg(64)->Arg(1024);

void BM_LadderQueue(benchmark::State& state) {
  const std::uint64_t max_delay = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    LadderQueue q(256);
    std::uint64_t seq = 0;
    for (int i = 0; i < kHot; ++i)
      q.push(Event{rng.uniform(max_delay), GateId(i), Logic4::T,
                   EventKind::Wire, seq++});
    std::vector<Event> batch;
    while (!q.empty()) {
      const Tick t = q.next_time();
      batch.clear();
      q.pop_all_at(t, batch);
      for (const Event& e : batch) {
        if (seq < 20000)
          q.push(Event{e.time + 1 + rng.uniform(max_delay), e.gate, e.value,
                       EventKind::Wire, seq++});
      }
    }
    benchmark::DoNotOptimize(seq);
  }
}
BENCHMARK(BM_LadderQueue)->Arg(4)->Arg(64)->Arg(1024);

}  // namespace

PLSIM_BENCHMARK_MAIN("micro_event_queue")
