// C1 — paper §V: "One of the first successful implementations was the
// optimistic asynchronous simulator of Briner et al. He reported speedups of
// up to 23 on 32 processors of a BBN GP1000."
//
// This harness sweeps processor count for the optimized optimistic engine
// (incremental saving + lazy cancellation, as Briner's mixed-level simulator
// used) on a large profile circuit, reporting modelled speedup and
// efficiency. Expected shape: speedup grows with P at decreasing efficiency.

#include <iostream>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

int main(int argc, char** argv) {
  bench::BenchDriver driver("c1_briner_scaling", argc, argv);
  const Circuit c = scaled_circuit(20000, 3);
  const Stimulus stim = random_stimulus(c, 20, 0.3, 5);

  // Gate-level grain: one table lookup per evaluation.
  VpConfig gate;
  gate.lazy_cancellation = true;
  // Briner-like mixed-level grain: functional models cost tens of gate
  // lookups per evaluation, which amortizes every Time Warp overhead; his
  // simulator also bounded optimism with a moving time window.
  VpConfig mixed = gate;
  mixed.cost.eval = 30.0;
  mixed.optimism_window = 2 * stim.period;
  mixed.gvt_period = 2000.0;

  const SequentialCost seq_gate = sequential_cost(c, stim, gate.cost);
  const SequentialCost seq_mixed = sequential_cost(c, stim, mixed.cost);

  std::cout << "C1: optimistic speedup vs processor count (20000-gate "
               "circuit, virtual platform)\n\n";
  Table table({"procs", "speedup_gate_grain", "speedup_mixed_level",
               "efficiency_mixed", "rollbacks", "util"});
  for (std::uint32_t procs : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const Partition p = partition_fm(c, procs, 1);
    const VpResult rg = run_timewarp_vp(c, stim, p, gate);
    const VpResult rm = run_timewarp_vp(c, stim, p, mixed);
    const double sm = seq_mixed.work / rm.makespan;
    record_result(driver.run()
                      .label("procs", std::uint64_t{procs})
                      .label("grain", "gate"),
                  rg, seq_gate.work);
    record_result(driver.run()
                      .label("procs", std::uint64_t{procs})
                      .label("grain", "mixed"),
                  rm, seq_mixed.work);
    table.add_row({Table::fmt(static_cast<std::uint64_t>(procs)),
                   Table::fmt(seq_gate.work / rg.makespan),
                   Table::fmt(sm),
                   Table::fmt(sm / procs),
                   Table::fmt(rm.stats.rollbacks),
                   Table::fmt(rm.utilization())});
  }
  table.print(std::cout);
  std::cout << "\npaper: Briner reports up to 23x on 32 processors "
               "(mixed-level, coarser-grain events than pure gate level); "
               "expect monotone speedup with sublinear efficiency\n";
  return driver.finish();
}
