// A2 (extension, paper §VI): "Hybrid algorithms are also under
// investigation ... using either a synchronous or conservative asynchronous
// algorithm within a cluster of processors and using an optimistic
// asynchronous algorithm across clusters. This appears especially attractive
// for naturally hierarchical execution platforms (e.g., networks of
// workstations where the individual workstations are bus-based
// multiprocessors)."
//
// Sweep the inter-cluster (network) latency on a 16-processor platform of
// four 4-processor nodes: pure Time Warp treats every boundary alike, while
// the hybrid pays optimistic machinery only at node boundaries.

#include <iostream>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

int main(int argc, char** argv) {
  bench::BenchDriver driver("a2_hybrid", argc, argv);
  const Circuit c = scaled_circuit(12000, 6);
  const Stimulus stim = random_stimulus(c, 15, 0.3, 3);
  const Partition p = partition_fm(c, 16, 1);

  std::cout << "A2: hybrid hierarchical synchronization "
               "(16 processors as 4 nodes x 4)\n\n";
  Table table({"inter_latency", "tw_aggressive", "tw_lazy", "hybrid",
               "tw_rollbacks", "hybrid_rollbacks", "hybrid_antis"});

  for (double factor : {1.0, 4.0, 10.0, 25.0}) {
    VpConfig tw_cfg;
    tw_cfg.cost.msg_latency *= factor;  // a flat network of workstations
    VpConfig tw_lazy = tw_cfg;
    tw_lazy.lazy_cancellation = true;

    VpConfig hy_cfg;
    hy_cfg.hybrid_cluster_size = 4;
    hy_cfg.inter_latency_factor = factor;

    const SequentialCost seq = sequential_cost(c, stim, VpConfig{}.cost);
    const VpResult ta = run_timewarp_vp(c, stim, p, tw_cfg);
    const VpResult tl = run_timewarp_vp(c, stim, p, tw_lazy);
    const VpResult hy = run_hybrid_vp(c, stim, p, hy_cfg);
    record_result(
        driver.run().label("latency_factor", factor).label("engine", "tw"),
        ta, seq.work);
    record_result(driver.run()
                      .label("latency_factor", factor)
                      .label("engine", "tw_lazy"),
                  tl, seq.work);
    record_result(
        driver.run().label("latency_factor", factor).label("engine", "hybrid"),
        hy, seq.work);
    table.add_row({Table::fmt(VpConfig{}.cost.msg_latency * factor),
                   Table::fmt(seq.work / ta.makespan),
                   Table::fmt(seq.work / tl.makespan),
                   Table::fmt(seq.work / hy.makespan),
                   Table::fmt(ta.stats.rollbacks),
                   Table::fmt(hy.stats.rollbacks),
                   Table::fmt(hy.stats.anti_messages)});
  }
  table.print(std::cout);
  std::cout << "\nmeasured trade-off: clustering slashes rollback and "
               "anti-message counts (speculation is contained at node "
               "boundaries), but the intra-node lockstep forfeits the "
               "latency hiding that makes flat Time Warp strong on "
               "fine-grain gate workloads — the paper offered the hybrid as "
               "an open direction, and this harness shows where its win "
               "would have to come from\n";
  return driver.finish();
}
