// C10 — paper §II: "Data parallelism uses different processors to simulate
// the circuit for distinct input vectors. This technique is quite effective
// for fault simulation, where a large number of independent input vectors
// need to be simulated."
//
// Compare serial single-fault simulation against bit-parallel (63 faults +
// the good machine per 64-bit word) fault simulation: identical coverage,
// ~63x fewer gate evaluations.

#include <iostream>

#include "bench_main.hpp"
#include "fault/fault.hpp"
#include "netlist/generators.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace plsim;

int main(int argc, char** argv) {
  bench::BenchDriver driver("c10_fault_parallel", argc, argv);
  std::cout << "C10: serial vs bit-parallel stuck-at fault simulation\n\n";
  Table table({"circuit", "faults", "coverage", "evals_serial",
               "evals_parallel", "eval_ratio", "wall_speedup"});

  struct Case {
    const char* name;
    Circuit circuit;
  };
  Case cases[] = {
      {"adder16", ripple_adder(16)},
      {"mult6", array_multiplier(6)},
      {"rand2000", scaled_circuit(2000, 5)},
  };

  for (auto& cs : cases) {
    const Circuit& c = cs.circuit;
    const Stimulus stim = random_stimulus(c, 50, 0.5, 3);
    const auto faults = enumerate_faults(c);

    WallTimer ts;
    const FaultSimResult serial = fault_simulate_serial(c, stim, faults);
    const double t_serial = ts.seconds();
    WallTimer tp;
    const FaultSimResult parallel = fault_simulate_parallel(c, stim, faults);
    const double t_parallel = tp.seconds();

    if (serial.detected != parallel.detected) {
      std::cerr << "COVERAGE MISMATCH on " << cs.name << "\n";
      return 1;
    }
    driver.run()
        .label("circuit", cs.name)
        .metric("faults", std::uint64_t{faults.size()})
        .metric("coverage", parallel.coverage())
        .metric("evals_serial", serial.gate_evaluations)
        .metric("evals_parallel", parallel.gate_evaluations)
        .wall("serial_seconds", t_serial)
        .wall("parallel_seconds", t_parallel);
    table.add_row({cs.name, Table::fmt(std::uint64_t(faults.size())),
                   Table::fmt(parallel.coverage()),
                   Table::fmt(serial.gate_evaluations),
                   Table::fmt(parallel.gate_evaluations),
                   Table::fmt(static_cast<double>(serial.gate_evaluations) /
                              static_cast<double>(parallel.gate_evaluations),
                              1),
                   Table::fmt(t_serial / std::max(t_parallel, 1e-9), 1)});
  }
  table.print(std::cout);
  std::cout << "\npaper: data parallelism is highly effective for fault "
               "simulation — near-63x fewer evaluations at identical "
               "coverage\n";
  return driver.finish();
}
