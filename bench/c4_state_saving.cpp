// C4 — paper §IV/§V: "Since state saving can be a time consuming operation,
// frequently only the change in state is saved ... incremental state saving
// is crucial to achieving good performance with optimistic algorithms."
//
// Compare full-copy vs incremental state saving in the optimistic engine
// across circuit sizes: saved volume, modelled speedup, and the growing gap.

#include <iostream>

#include "bench_main.hpp"
#include "netlist/generators.hpp"
#include "partition/algorithms.hpp"
#include "stim/stimulus.hpp"
#include "util/table.hpp"
#include "vp/vp.hpp"

using namespace plsim;

int main(int argc, char** argv) {
  bench::BenchDriver driver("c4_state_saving", argc, argv);
  std::cout << "C4: Time Warp state-saving policy (8 processors)\n\n";
  Table table({"gates", "speedup_incr", "speedup_full", "undo_entries",
               "full_bytes", "ratio"});

  for (std::size_t size : {1000u, 3000u, 8000u, 20000u}) {
    const Circuit c = scaled_circuit(size, 6);
    const Stimulus stim = random_stimulus(c, 15, 0.3, 9);
    const Partition p = partition_fm(c, 8, 1);

    VpConfig incr;
    incr.save = SaveMode::Incremental;
    incr.lazy_cancellation = true;
    VpConfig full = incr;
    full.save = SaveMode::Full;

    const SequentialCost seq = sequential_cost(c, stim, incr.cost);
    const VpResult ri = run_timewarp_vp(c, stim, p, incr);
    const VpResult rf = run_timewarp_vp(c, stim, p, full);

    const double si = seq.work / ri.makespan;
    const double sf = seq.work / rf.makespan;
    record_result(driver.run()
                      .label("gates", std::uint64_t{size})
                      .label("save", "incremental"),
                  ri, seq.work);
    record_result(
        driver.run().label("gates", std::uint64_t{size}).label("save", "full"),
        rf, seq.work);
    table.add_row({Table::fmt(static_cast<std::uint64_t>(size)),
                   Table::fmt(si), Table::fmt(sf),
                   Table::fmt(ri.stats.undo_entries),
                   Table::fmt(rf.stats.save_bytes),
                   Table::fmt(si / sf)});
  }
  table.print(std::cout);
  std::cout << "\npaper: incremental saving is crucial — the full-copy "
               "column collapses as block state grows while incremental "
               "stays flat\n";
  return driver.finish();
}
