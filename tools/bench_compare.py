#!/usr/bin/env python3
"""Compare two plsim benchmark JSON files (schema plsim-bench-v1).

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--tol REL_TOL]

Runs are matched by their exact label dictionary (the join key). For every
matched pair the "metrics" objects are compared key-by-key with a relative
tolerance; "wall" and top-level "phases" are host wall-clock measurements and
are deliberately ignored. Missing or extra runs, missing or extra metric
keys, and out-of-tolerance values are all reported and fail the comparison.

Exit status: 0 = within tolerance, 1 = differences found, 2 = usage/IO error.
"""

import argparse
import json
import sys

SCHEMA = "plsim-bench-v1"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        sys.exit(
            f"bench_compare: {path}: schema {doc.get('schema')!r}, "
            f"expected {SCHEMA!r}"
        )
    if not isinstance(doc.get("runs"), list):
        sys.exit(f"bench_compare: {path}: missing 'runs' array")
    return doc


def run_key(run):
    """Hashable identity of a run: its sorted label items."""
    labels = run.get("labels", {})
    return tuple(sorted(labels.items()))


def fmt_key(key):
    return "{" + ", ".join(f"{k}={v}" for k, v in key) + "}" if key else "{}"


def index_runs(doc, path):
    runs = {}
    for run in doc["runs"]:
        key = run_key(run)
        if key in runs:
            sys.exit(f"bench_compare: {path}: duplicate run labels {fmt_key(key)}")
        runs[key] = run.get("metrics", {})
    return runs


def values_differ(a, b, tol):
    if type(a) is bool or type(b) is bool or not isinstance(a, (int, float)) \
            or not isinstance(b, (int, float)):
        return a != b
    if a == b:
        return False
    return abs(a - b) > tol * max(abs(a), abs(b), 1e-300)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--tol", type=float, default=1e-6,
                    help="relative tolerance for numeric metrics (default 1e-6)")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    problems = []

    if base_doc.get("bench") != cand_doc.get("bench"):
        problems.append(
            f"bench name differs: {base_doc.get('bench')!r} vs "
            f"{cand_doc.get('bench')!r}"
        )

    base = index_runs(base_doc, args.baseline)
    cand = index_runs(cand_doc, args.candidate)

    for key in base:
        if key not in cand:
            problems.append(f"run {fmt_key(key)}: missing from candidate")
    for key in cand:
        if key not in base:
            problems.append(f"run {fmt_key(key)}: not in baseline")

    for key in sorted(set(base) & set(cand)):
        bm, cm = base[key], cand[key]
        for name in bm:
            if name not in cm:
                problems.append(f"run {fmt_key(key)}: metric {name!r} missing "
                                f"from candidate")
        for name in cm:
            if name not in bm:
                problems.append(f"run {fmt_key(key)}: metric {name!r} not in "
                                f"baseline")
        for name in sorted(set(bm) & set(cm)):
            if values_differ(bm[name], cm[name], args.tol):
                problems.append(
                    f"run {fmt_key(key)}: {name} = {cm[name]} "
                    f"(baseline {bm[name]}, tol {args.tol:g})"
                )

    if problems:
        print(f"bench_compare: {len(problems)} difference(s) between "
              f"{args.baseline} and {args.candidate}:")
        for p in problems:
            print(f"  {p}")
        return 1
    n = len(base)
    print(f"bench_compare: OK ({n} run(s), "
          f"{sum(len(m) for m in base.values())} metric value(s) match)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
