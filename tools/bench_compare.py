#!/usr/bin/env python3
"""Compare two plsim benchmark JSON files (schema plsim-bench-v1).

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--tol REL_TOL]

Runs are matched by their exact label dictionary (the join key). For every
matched pair the "metrics" objects are compared key-by-key with a relative
tolerance; "wall" and top-level "phases" are host wall-clock measurements and
are deliberately ignored. Missing or extra runs, missing or extra metric
keys, and out-of-tolerance values are all reported and fail the comparison.

A run without a "labels" object (the join key) is a hard input error, not a
silently empty key: a truncated or hand-edited file must never pass by
accidentally matching another label-less run. NaN never matches a number
(NaN == NaN is fine — a metric that deterministically serializes NaN stays
comparable).

Exit status: 0 = within tolerance, 1 = differences found, 2 = usage/IO/schema
error (unreadable file, bad schema, malformed run).
"""

import argparse
import json
import math
import sys

SCHEMA = "plsim-bench-v1"


def die(msg):
    """Input/schema error: report and exit 2 (as documented)."""
    print(f"bench_compare: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")
    if not isinstance(doc, dict):
        die(f"{path}: top level is {type(doc).__name__}, expected an object")
    if doc.get("schema") != SCHEMA:
        die(f"{path}: schema {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(doc.get("runs"), list):
        die(f"{path}: missing 'runs' array")
    return doc


def run_key(run, path, index):
    """Hashable identity of a run: its sorted label items. A run with no
    labels object is malformed input — refuse it loudly rather than keying
    it as {} and letting a truncated file slide through the comparison."""
    if not isinstance(run, dict):
        die(f"{path}: runs[{index}] is {type(run).__name__}, "
            f"expected an object")
    labels = run.get("labels")
    if not isinstance(labels, dict):
        die(f"{path}: runs[{index}]: missing 'labels' object "
            f"(got {labels!r}) — every run needs its label join key")
    return tuple(sorted((str(k), json.dumps(v, sort_keys=True))
                        for k, v in labels.items()))


def fmt_key(key):
    return "{" + ", ".join(f"{k}={v}" for k, v in key) + "}" if key else "{}"


def index_runs(doc, path):
    runs = {}
    for i, run in enumerate(doc["runs"]):
        key = run_key(run, path, i)
        if key in runs:
            die(f"{path}: duplicate run labels {fmt_key(key)}")
        metrics = run.get("metrics", {})
        if not isinstance(metrics, dict):
            die(f"{path}: run {fmt_key(key)}: 'metrics' is "
                f"{type(metrics).__name__}, expected an object")
        runs[key] = metrics
    return runs


def values_differ(a, b, tol):
    if type(a) is bool or type(b) is bool or not isinstance(a, (int, float)) \
            or not isinstance(b, (int, float)):
        return a != b
    a_nan = isinstance(a, float) and math.isnan(a)
    b_nan = isinstance(b, float) and math.isnan(b)
    if a_nan or b_nan:
        # NaN matches only NaN; comparing NaN against a number must fail,
        # not fall through the (always-false) tolerance comparison below.
        return a_nan != b_nan
    if a == b:
        return False
    return abs(a - b) > tol * max(abs(a), abs(b), 1e-300)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--tol", type=float, default=1e-6,
                    help="relative tolerance for numeric metrics (default 1e-6)")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    problems = []

    if base_doc.get("bench") != cand_doc.get("bench"):
        problems.append(
            f"bench name differs: {base_doc.get('bench')!r} vs "
            f"{cand_doc.get('bench')!r}"
        )

    base = index_runs(base_doc, args.baseline)
    cand = index_runs(cand_doc, args.candidate)

    for key in base:
        if key not in cand:
            problems.append(f"run {fmt_key(key)}: MISSING from candidate "
                            f"({args.candidate})")
    for key in cand:
        if key not in base:
            problems.append(f"run {fmt_key(key)}: not in baseline "
                            f"({args.baseline})")

    for key in sorted(set(base) & set(cand)):
        bm, cm = base[key], cand[key]
        for name in bm:
            if name not in cm:
                problems.append(f"run {fmt_key(key)}: metric {name!r} MISSING "
                                f"from candidate")
        for name in cm:
            if name not in bm:
                problems.append(f"run {fmt_key(key)}: metric {name!r} not in "
                                f"baseline")
        for name in sorted(set(bm) & set(cm)):
            if values_differ(bm[name], cm[name], args.tol):
                problems.append(
                    f"run {fmt_key(key)}: {name} = {cm[name]} "
                    f"(baseline {bm[name]}, tol {args.tol:g})"
                )

    if problems:
        print(f"bench_compare: {len(problems)} difference(s) between "
              f"{args.baseline} and {args.candidate}:")
        for p in problems:
            print(f"  {p}")
        return 1
    n = len(base)
    print(f"bench_compare: OK ({n} run(s), "
          f"{sum(len(m) for m in base.values())} metric value(s) match)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
