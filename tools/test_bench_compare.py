#!/usr/bin/env python3
"""Regression tests for bench_compare.py, run as a CTest test.

Covers the exit-code contract (0 match / 1 difference / 2 bad input) and the
truncated-JSON regressions: a candidate whose run lost its "labels" object
must be a hard input error with a clear diagnostic, and a syntactically
truncated file must exit 2, never compare clean.
"""

import json
import math
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
COMPARE = TOOLS / "bench_compare.py"


def doc(runs, bench="demo"):
    return {"schema": "plsim-bench-v1", "bench": bench, "runs": runs}


def run(name="r0", metrics=None, labels=None):
    return {
        "labels": {"run": name} if labels is None else labels,
        "metrics": {"evals": 100} if metrics is None else metrics,
        "wall": {},
    }


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.n = 0

    def tearDown(self):
        self.dir.cleanup()

    def write(self, content):
        self.n += 1
        path = Path(self.dir.name) / f"f{self.n}.json"
        if isinstance(content, str):
            path.write_text(content, encoding="utf-8")
        else:
            path.write_text(json.dumps(content), encoding="utf-8")
        return path

    def compare(self, baseline, candidate, *extra):
        return subprocess.run(
            [sys.executable, str(COMPARE), str(baseline), str(candidate),
             *extra],
            capture_output=True, text=True)

    def test_identical_files_match(self):
        d = doc([run("a"), run("b")])
        p = self.compare(self.write(d), self.write(d))
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)
        self.assertIn("OK", p.stdout)

    def test_metric_difference_exits_1(self):
        base = self.write(doc([run("a", {"evals": 100})]))
        cand = self.write(doc([run("a", {"evals": 150})]))
        p = self.compare(base, cand)
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)
        self.assertIn("evals", p.stdout)

    def test_dropped_run_is_reported_with_its_labels(self):
        base = self.write(doc([run("a"), run("b")]))
        cand = self.write(doc([run("a")]))  # run "b" truncated away
        p = self.compare(base, cand)
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)
        self.assertIn("MISSING from candidate", p.stdout)
        self.assertIn('run="b"', p.stdout)

    def test_truncated_json_text_exits_2(self):
        base = self.write(doc([run("a")]))
        full = json.dumps(doc([run("a")]))
        cand = self.write(full[: len(full) // 2])  # mid-document truncation
        p = self.compare(base, cand)
        self.assertEqual(p.returncode, 2, p.stdout + p.stderr)
        self.assertIn("cannot read", p.stderr)

    def test_run_missing_labels_is_hard_error(self):
        # The truncated-labels regression: a run without its "labels" join
        # key must be refused (exit 2, named run index), never keyed as {}.
        base = self.write(doc([run("a")]))
        cand = self.write(doc([{"metrics": {"evals": 100}, "wall": {}}]))
        p = self.compare(base, cand)
        self.assertEqual(p.returncode, 2, p.stdout + p.stderr)
        self.assertIn("labels", p.stderr)
        self.assertIn("runs[0]", p.stderr)

    def test_two_label_less_runs_do_not_match_each_other(self):
        # Before the fix both sides keyed as {} and compared clean.
        d = doc([{"metrics": {"evals": 1}, "wall": {}}])
        p = self.compare(self.write(d), self.write(d))
        self.assertEqual(p.returncode, 2, p.stdout + p.stderr)

    def test_wrong_schema_exits_2(self):
        base = self.write(doc([run("a")]))
        bad = self.write({"schema": "other", "runs": []})
        p = self.compare(base, bad)
        self.assertEqual(p.returncode, 2, p.stdout + p.stderr)

    def test_missing_runs_array_exits_2(self):
        base = self.write(doc([run("a")]))
        bad = self.write({"schema": "plsim-bench-v1", "bench": "demo"})
        p = self.compare(base, bad)
        self.assertEqual(p.returncode, 2, p.stdout + p.stderr)

    def test_nan_does_not_match_a_number(self):
        base = self.write(doc([run("a", {"ratio": 2.5})]))
        cand = self.write(
            json.dumps(doc([run("a", {"ratio": math.nan})]))
        )
        p = self.compare(base, cand)
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)
        self.assertIn("ratio", p.stdout)

    def test_nan_matches_nan(self):
        d = json.dumps(doc([run("a", {"ratio": math.nan})]))
        p = self.compare(self.write(d), self.write(d))
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)

    def test_tolerance_is_respected(self):
        base = self.write(doc([run("a", {"wallish": 1.0})]))
        cand = self.write(doc([run("a", {"wallish": 1.0005})]))
        self.assertEqual(self.compare(base, cand).returncode, 1)
        self.assertEqual(
            self.compare(base, cand, "--tol", "1e-2").returncode, 0)

    def test_missing_metric_key_exits_1(self):
        base = self.write(doc([run("a", {"evals": 1, "events": 2})]))
        cand = self.write(doc([run("a", {"evals": 1})]))
        p = self.compare(base, cand)
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)
        self.assertIn("'events' MISSING", p.stdout)


if __name__ == "__main__":
    unittest.main()
