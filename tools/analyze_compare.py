#!/usr/bin/env python3
"""Compare two plsim-analyze-v1 reports (see tools/plsim_analyze.cpp).

Usage: analyze_compare.py GOLDEN CURRENT [--tol REL]

Circuits are joined by their "circuit" name; everything under each circuit
(ok flag, severity counts, stats, findings, optimize block) is compared
recursively. Numbers match within the relative tolerance (analyzer output
is deterministic, so the default is effectively exact and the tolerance
only absorbs float formatting of avg_fanout). Exit 0 on match, 1 on
mismatch, 2 on bad input.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "plsim-analyze-v1":
        sys.exit(f"{path}: not a plsim-analyze-v1 report")
    return {c["circuit"]: c for c in doc.get("circuits", [])}


def diff(path, golden, current, tol, errors):
    if isinstance(golden, dict) and isinstance(current, dict):
        for key in sorted(set(golden) | set(current)):
            if key not in golden:
                errors.append(f"{path}.{key}: unexpected (not in golden)")
            elif key not in current:
                errors.append(f"{path}.{key}: missing")
            else:
                diff(f"{path}.{key}", golden[key], current[key], tol, errors)
    elif isinstance(golden, list) and isinstance(current, list):
        if len(golden) != len(current):
            errors.append(
                f"{path}: length {len(current)} != golden {len(golden)}")
        for i, (g, c) in enumerate(zip(golden, current)):
            diff(f"{path}[{i}]", g, c, tol, errors)
    elif isinstance(golden, bool) or isinstance(current, bool):
        if golden != current:
            errors.append(f"{path}: {current} != golden {golden}")
    elif isinstance(golden, (int, float)) and isinstance(current, (int, float)):
        scale = max(abs(golden), abs(current), 1e-300)
        if abs(golden - current) > tol * scale:
            errors.append(f"{path}: {current} != golden {golden}")
    elif golden != current:
        errors.append(f"{path}: {current!r} != golden {golden!r}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("golden")
    ap.add_argument("current")
    ap.add_argument("--tol", type=float, default=1e-9,
                    help="relative tolerance for numeric fields")
    args = ap.parse_args()

    golden = load(args.golden)
    current = load(args.current)
    errors = []
    for name in sorted(set(golden) | set(current)):
        if name not in golden:
            errors.append(f"{name}: circuit not in golden report")
        elif name not in current:
            errors.append(f"{name}: circuit missing from current report")
        else:
            diff(name, golden[name], current[name], args.tol, errors)

    if errors:
        print(f"analyze_compare: {len(errors)} mismatch(es)")
        for e in errors:
            print("  " + e)
        return 1
    print(f"analyze_compare: {len(golden)} circuit(s) match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
