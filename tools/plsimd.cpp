// plsimd — the persistent simulation daemon (ISSUE: plsim as a service).
//
// Keeps compiled SimPlans hot in the Service's LRU caches across jobs and
// serves plsim-job-v1 frames over a Unix domain socket:
//
//   plsimd --socket /tmp/plsim.sock [--shards N] [--workers N]
//          [--queue N] [--plan-cache N] [--circuit-cache N] [--grace SEC]
//
// Graceful shutdown (SIGTERM/SIGINT): stop admitting new jobs — clients get
// structured "shutting_down" rejections — drain queued and in-flight jobs,
// hold the socket open for --grace seconds so late clients see the
// rejection instead of a connection error, then close the transport and
// print a final metrics JSON document on stdout (exit 0).

#include <poll.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "server/server.hpp"
#include "server/service.hpp"
#include "util/json.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--shards N] [--workers N]\n"
               "          [--queue N] [--plan-cache N] [--circuit-cache N]\n"
               "          [--grace SECONDS]\n",
               argv0);
  std::exit(2);
}

std::uint64_t arg_u64(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage(argv[0]);
  return std::strtoull(argv[++i], nullptr, 10);
}

plsim::JsonValue cache_json(const plsim::CacheCounters& c) {
  plsim::JsonValue v = plsim::JsonValue::object();
  v.set("hits", plsim::JsonValue(c.hits));
  v.set("misses", plsim::JsonValue(c.misses));
  v.set("joined", plsim::JsonValue(c.joined));
  v.set("evictions", plsim::JsonValue(c.evictions));
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  plsim::ServiceConfig cfg;
  std::uint64_t grace_seconds = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc)
      socket_path = argv[++i];
    else if (arg == "--shards")
      cfg.shards = static_cast<std::uint32_t>(arg_u64(argc, argv, i));
    else if (arg == "--workers")
      cfg.workers_per_shard =
          static_cast<std::uint32_t>(arg_u64(argc, argv, i));
    else if (arg == "--queue")
      cfg.queue_capacity = arg_u64(argc, argv, i);
    else if (arg == "--plan-cache")
      cfg.plan_cache_capacity = arg_u64(argc, argv, i);
    else if (arg == "--circuit-cache")
      cfg.circuit_cache_capacity = arg_u64(argc, argv, i);
    else if (arg == "--grace")
      grace_seconds = arg_u64(argc, argv, i);
    else
      usage(argv[0]);
  }
  if (socket_path.empty()) usage(argv[0]);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  try {
    plsim::Service service(cfg);
    plsim::UnixServer server(service, socket_path);
    std::fprintf(stderr,
                 "plsimd: listening on %s (%u shards x %u workers, queue "
                 "%zu, plan cache %zu)\n",
                 socket_path.c_str(), cfg.shards, cfg.workers_per_shard,
                 cfg.queue_capacity, cfg.plan_cache_capacity);

    while (g_stop == 0) ::poll(nullptr, 0, 100);

    std::fprintf(stderr, "plsimd: shutdown requested, draining\n");
    service.begin_shutdown();
    service.drain();
    // Grace window: the listener stays up so stragglers get structured
    // shutting_down rejections rather than ECONNREFUSED.
    for (std::uint64_t i = 0; i < grace_seconds * 10; ++i)
      ::poll(nullptr, 0, 100);
    server.stop();

    const plsim::ServiceMetrics m = service.metrics();
    plsim::JsonValue doc = plsim::JsonValue::object();
    doc.set("schema", plsim::JsonValue(std::string("plsimd-metrics-v1")));
    doc.set("jobs_ok", plsim::JsonValue(m.jobs_ok));
    doc.set("jobs_failed", plsim::JsonValue(m.jobs_failed));
    doc.set("rejected_overload", plsim::JsonValue(m.rejected_overload));
    doc.set("rejected_shutdown", plsim::JsonValue(m.rejected_shutdown));
    doc.set("max_queue_depth", plsim::JsonValue(m.max_queue_depth));
    doc.set("connections", plsim::JsonValue(server.connections()));
    doc.set("plan_cache", cache_json(m.plan_cache));
    doc.set("circuit_cache", cache_json(m.circuit_cache));
    std::cout << doc.dump() << "\n";
    std::fprintf(stderr, "plsimd: drained, exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "plsimd: %s\n", e.what());
    return 1;
  }
}
