// plsim_load — load generator for plsimd (ISSUE: service throughput).
//
// Replays a seeded mixed workload against a running daemon over N client
// connections and reports throughput and the latency distribution:
//
//   plsim_load --socket /tmp/plsim.sock [--jobs N] [--clients N]
//              [--hot K] [--gates N] [--blocks N] [--seed S]
//              [--json PATH] [--expect-rejected] [--quiet]
//
// The mix models a simulation farm's traffic: ~55% hot-key jobs (a skewed
// pick among K hot circuits — warm plan-cache hits after first touch),
// ~15% cold-key churn (unique generator seeds — always compile), plus
// packed-plane oblivious sweeps, golden runs and fault jobs. Every job is
// deterministic given --seed; results are digest-checked per class (two
// jobs with identical requests must return identical wave digests).
//
// --expect-rejected inverts the contract for the CI graceful-shutdown
// probe: exit 0 iff every job comes back as a structured shutting_down
// rejection.
//
// With --json, emits a plsim-bench-v1 document (latencies under wall.*,
// counts as metrics) compatible with tools/bench_compare.py.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "parallel/guarded.hpp"
#include "parallel/threads.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "util/hash.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace plsim;

namespace {

struct Options {
  std::string socket_path;
  std::uint64_t jobs = 1000;
  std::uint32_t clients = 4;
  std::uint64_t hot_keys = 4;
  std::uint64_t hot_gates = 2000;
  std::uint32_t blocks = 4;
  std::uint64_t seed = 1;
  std::string json_path;
  bool expect_rejected = false;
  bool quiet = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--jobs N] [--clients N] [--hot K]\n"
               "          [--gates N] [--blocks N] [--seed S] [--json PATH]\n"
               "          [--expect-rejected] [--quiet]\n",
               argv0);
  std::exit(2);
}

/// Deterministic job for global index i. The class mix and all per-class
/// parameters derive from (seed, i) only, so two replays are identical.
JobRequest make_job(const Options& opt, std::uint64_t i) {
  Rng rng(mix64(opt.seed ^ (i * 0x9e3779b97f4a7c15ull)));
  JobRequest req;
  req.id = i;
  req.blocks = opt.blocks;
  req.stimulus.cycles = 6;
  req.stimulus.seed = 1 + rng.uniform(4);
  const std::uint64_t cls = rng.uniform(100);
  if (cls < 55) {
    // Hot keys with skew: min of two uniform picks biases toward key 0.
    const std::uint64_t a = rng.uniform(opt.hot_keys);
    const std::uint64_t b = rng.uniform(opt.hot_keys);
    req.circuit.kind = CircuitSpec::Kind::Generator;
    req.circuit.generator = "scaled";
    req.circuit.gates = opt.hot_gates;
    req.circuit.seed = 100 + std::min(a, b);
    const std::uint64_t e = rng.uniform(3);
    req.engine = e == 0 ? "sync" : e == 1 ? "conservative" : "timewarp";
  } else if (cls < 70) {
    // Cold churn: unique seed per job — the plan cache can never be warm.
    req.circuit.kind = CircuitSpec::Kind::Generator;
    req.circuit.generator = "random";
    req.circuit.gates = 400;
    req.circuit.seed = 1000000 + i;
    req.engine = rng.uniform(2) == 0 ? "conservative" : "sync";
  } else if (cls < 82) {
    // Packed-plane oblivious sweep on a mid-size circuit.
    req.circuit.kind = CircuitSpec::Kind::Generator;
    req.circuit.generator = "scaled";
    req.circuit.gates = 1000;
    req.circuit.seed = 100 + rng.uniform(opt.hot_keys);
    req.engine = "oblivious";
    req.packed_plane = true;
  } else if (cls < 92) {
    req.circuit.kind = CircuitSpec::Kind::Builtin;
    req.circuit.builtin = rng.uniform(2) == 0 ? "c17" : "s27";
    req.engine = "golden";
  } else {
    req.circuit.kind = CircuitSpec::Kind::Generator;
    req.circuit.generator = "random";
    req.circuit.gates = 250;
    req.circuit.seed = 100 + rng.uniform(opt.hot_keys);
    req.engine = "fault";
  }
  return req;
}

struct Outcome {
  double latency = 0.0;
  bool ok = false;
  JobErrorCode code = JobErrorCode::None;
  std::uint64_t request_key = 0;  ///< identical requests must agree...
  std::uint64_t wave_digest = 0;  ///< ...on this
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::uint64_t string_key(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  return h;
}

std::uint64_t request_identity(const JobRequest& r) {
  std::uint64_t k = r.circuit.content_key();
  k = hash_combine(k, string_key(r.engine));
  k = hash_combine(k, r.stimulus.seed);
  k = hash_combine(k, r.stimulus.cycles);
  k = hash_combine(k, r.blocks);
  return k;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_u64 = [&]() -> std::uint64_t {
      if (i + 1 >= argc) usage(argv[0]);
      return std::strtoull(argv[++i], nullptr, 10);
    };
    if (arg == "--socket" && i + 1 < argc)
      opt.socket_path = argv[++i];
    else if (arg == "--jobs")
      opt.jobs = next_u64();
    else if (arg == "--clients")
      opt.clients = static_cast<std::uint32_t>(next_u64());
    else if (arg == "--hot")
      opt.hot_keys = std::max<std::uint64_t>(1, next_u64());
    else if (arg == "--gates")
      opt.hot_gates = next_u64();
    else if (arg == "--blocks")
      opt.blocks = static_cast<std::uint32_t>(next_u64());
    else if (arg == "--seed")
      opt.seed = next_u64();
    else if (arg == "--json" && i + 1 < argc)
      opt.json_path = argv[++i];
    else if (arg == "--expect-rejected")
      opt.expect_rejected = true;
    else if (arg == "--quiet")
      opt.quiet = true;
    else
      usage(argv[0]);
  }
  if (opt.socket_path.empty()) usage(argv[0]);
  if (opt.clients == 0) opt.clients = 1;

  Guarded<std::vector<Outcome>> collected;
  Guarded<std::vector<std::string>> errors;
  WallTimer total;
  run_on_threads(opt.clients, [&](unsigned tid) {
    std::vector<Outcome> local;
    try {
      ServiceClient client(opt.socket_path);
      // Client t replays global job indices t, t+C, t+2C, ...
      for (std::uint64_t i = tid; i < opt.jobs; i += opt.clients) {
        const JobRequest req = make_job(opt, i);
        WallTimer timer;
        const JobResponse resp = client.call(req);
        Outcome out;
        out.latency = timer.seconds();
        out.ok = resp.ok;
        out.code = resp.code;
        out.request_key = request_identity(req);
        out.wave_digest = resp.wave_digest;
        local.push_back(out);
      }
    } catch (const std::exception& e) {
      errors.with([&](std::vector<std::string>& v) {
        v.push_back("client " + std::to_string(tid) + ": " + e.what());
      });
    }
    collected.with([&](std::vector<Outcome>& all) {
      all.insert(all.end(), local.begin(), local.end());
    });
  });
  const double wall = total.seconds();

  std::vector<Outcome> outcomes;
  collected.with([&](std::vector<Outcome>& all) { outcomes.swap(all); });
  std::vector<std::string> transport_errors;
  errors.with(
      [&](std::vector<std::string>& v) { transport_errors.swap(v); });

  std::uint64_t ok = 0, rejected_shutdown = 0, rejected_overload = 0,
                failed = 0;
  std::vector<double> latencies;
  latencies.reserve(outcomes.size());
  for (const Outcome& o : outcomes) {
    latencies.push_back(o.latency);
    if (o.ok)
      ++ok;
    else if (o.code == JobErrorCode::ShuttingDown)
      ++rejected_shutdown;
    else if (o.code == JobErrorCode::Overloaded)
      ++rejected_overload;
    else
      ++failed;
  }

  // Determinism audit: identical requests must return identical digests.
  std::uint64_t digest_mismatches = 0;
  {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
    for (const Outcome& o : outcomes) {
      if (!o.ok) continue;
      bool found = false;
      for (const auto& [k, d] : seen) {
        if (k != o.request_key) continue;
        found = true;
        if (d != o.wave_digest) ++digest_mismatches;
        break;
      }
      if (!found) seen.emplace_back(o.request_key, o.wave_digest);
    }
  }

  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p95 = percentile(latencies, 0.95);
  const double p99 = percentile(latencies, 0.99);
  const double jobs_per_sec =
      wall > 0.0 ? static_cast<double>(outcomes.size()) / wall : 0.0;

  if (!opt.quiet) {
    std::printf("plsim_load: %zu jobs over %u clients in %.3fs "
                "(%.1f jobs/sec)\n",
                outcomes.size(), opt.clients, wall, jobs_per_sec);
    std::printf("  ok %llu  failed %llu  rejected: overload %llu "
                "shutdown %llu  digest mismatches %llu\n",
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(rejected_overload),
                static_cast<unsigned long long>(rejected_shutdown),
                static_cast<unsigned long long>(digest_mismatches));
    std::printf("  latency p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
                p50 * 1e3, p95 * 1e3, p99 * 1e3);
    for (const std::string& e : transport_errors)
      std::printf("  transport error: %s\n", e.c_str());
  }

  if (!opt.json_path.empty()) {
    MetricsRegistry registry("plsim_load");
    MetricsRun& row = registry.add_run();
    row.label("mode", opt.expect_rejected ? "shutdown_probe" : "mixed");
    row.label("clients", static_cast<std::uint64_t>(opt.clients));
    row.metric("jobs", static_cast<std::uint64_t>(outcomes.size()));
    row.metric("ok", ok);
    row.metric("failed", failed);
    row.metric("rejected_overload", rejected_overload);
    row.metric("rejected_shutdown", rejected_shutdown);
    row.metric("digest_mismatches", digest_mismatches);
    row.wall("seconds", wall);
    row.wall("jobs_per_sec", jobs_per_sec);
    row.wall("p50_ms", p50 * 1e3);
    row.wall("p95_ms", p95 * 1e3);
    row.wall("p99_ms", p99 * 1e3);
    std::string error;
    if (!registry.write_file(opt.json_path, &error)) {
      std::fprintf(stderr, "plsim_load: %s\n", error.c_str());
      return 1;
    }
  }

  if (opt.expect_rejected) {
    const bool all_rejected = outcomes.size() == opt.jobs && ok == 0 &&
                              failed == 0 && rejected_overload == 0 &&
                              rejected_shutdown == opt.jobs;
    if (!all_rejected)
      std::fprintf(stderr,
                   "plsim_load: expected every job to be rejected with "
                   "shutting_down\n");
    return all_rejected ? 0 : 1;
  }
  if (!transport_errors.empty() || failed > 0 || digest_mismatches > 0)
    return 1;
  return 0;
}
