#!/usr/bin/env python3
"""Extract per-gate activity from plsim binary traces (magic PLSTRC1).

Usage:
    activity_from_trace.py TRACE.bin [TRACE2.bin ...] [--out FILE] [--top N]
    activity_from_trace.py --selftest

Engines that run under PLSIM_TRACE append end-of-run summary records to the
capture: one gate-eval record per gate that was evaluated (aux = gate id,
tick = evaluation count) and one net-msg record per gate that drove a
cross-block message (tick = send count). This tool folds those records into
the JSON profile the activity-weighted partitioners consume offline —
the same feedback loop EngineConfig::activity_feedback closes in-process.

Several captures may be aggregated (counts are summed per gate), but only
when they agree on the clock that produced the time-valued fields: the
binary header flags whether blocked/barrier durations are virtual work
units (virtual-platform executors) or wall nanoseconds (threaded engines),
and adding one to the other yields garbage. A mismatch is a hard error.

Output JSON fields: source (engine names, "+"-joined), clock
("virtual-units" | "wall-ns"), evals / messages (gate id -> count, sparse),
blocked_units / barrier_units (summed span durations, header clock units),
totals, and the record/file counts consumed.

Exit status: 0 = ok, 2 = usage/format/clock-mismatch error.
"""

import argparse
import io
import json
import struct
import sys
from collections import defaultdict

MAGIC = b"PLSTRC1\n"
RECORD = struct.Struct("<QIIQIHH")  # start, dur, lp, tick, aux, kind, pad

BARRIER_WAIT = 6
BLOCKED = 8
GATE_EVAL = 9
NET_MSG = 10


def die(msg):
    print(f"activity_from_trace: {msg}", file=sys.stderr)
    sys.exit(2)


def parse_trace(data, label):
    """Parse one binary capture; returns (header dict, record tuples)."""
    if data[:8] != MAGIC:
        die(f"{label}: bad magic (not a plsim trace)")
    off = 8

    def u32():
        nonlocal off
        (v,) = struct.unpack_from("<I", data, off)
        off += 4
        return v

    def u64():
        nonlocal off
        (v,) = struct.unpack_from("<Q", data, off)
        off += 8
        return v

    try:
        version = u32()
        if version != 1:
            die(f"{label}: unsupported version {version}")
        flags = u32()
        name_len = u32()
        engine = data[off:off + name_len].decode("utf-8", "replace")
        off += name_len
        lanes = u32()
        n_records = u64()
        dropped = u64()
    except struct.error as e:
        die(f"{label}: truncated header: {e}")
    expected = off + n_records * RECORD.size
    if expected > len(data):
        die(f"{label}: truncated ({len(data)} bytes, need {expected})")
    records = [RECORD.unpack_from(data, off + i * RECORD.size)
               for i in range(n_records)]
    header = {
        "engine": engine,
        "lanes": lanes,
        "records": n_records,
        "dropped": dropped,
        "virtual_clock": bool(flags & 1),
    }
    return header, records


def load(path):
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        die(f"cannot read {path}: {e}")
    return parse_trace(data, path)


def extract(paths, readers=None):
    """Fold captures into one profile dict. `readers` overrides file IO for
    the selftest: a list of (header, records) tuples."""
    evals = defaultdict(int)
    messages = defaultdict(int)
    blocked = 0
    barrier = 0
    sources = []
    clock = None
    n_records = 0
    parsed = readers if readers is not None else [load(p) for p in paths]
    for (header, records), label in zip(parsed, paths):
        if clock is None:
            clock = header["virtual_clock"]
        elif header["virtual_clock"] != clock:
            this = ("virtual work units" if header["virtual_clock"]
                    else "wall nanoseconds")
            die(f"clock-unit mismatch — '{label}' records {this} but "
                f"earlier captures record the other; aggregate only traces "
                f"from the same clock domain")
        if header["engine"] not in sources:
            sources.append(header["engine"])
        n_records += len(records)
        for _start, dur, _lp, tick, aux, kind, _pad in records:
            if kind == GATE_EVAL:
                evals[aux] += tick
            elif kind == NET_MSG:
                messages[aux] += tick
            elif kind == BLOCKED:
                blocked += dur
            elif kind == BARRIER_WAIT:
                barrier += dur
    return {
        "source": "+".join(sources),
        "clock": "virtual-units" if clock else "wall-ns",
        "files": len(paths),
        "records": n_records,
        "evals": {str(g): n for g, n in sorted(evals.items())},
        "messages": {str(g): n for g, n in sorted(messages.items())},
        "blocked_units": blocked,
        "barrier_units": barrier,
        "total_evals": sum(evals.values()),
        "total_messages": sum(messages.values()),
    }


def make_trace(engine, virtual, records):
    """Assemble a binary capture in memory (selftest helper)."""
    buf = io.BytesIO()
    buf.write(MAGIC)
    buf.write(struct.pack("<II", 1, 1 if virtual else 0))
    name = engine.encode()
    buf.write(struct.pack("<I", len(name)))
    buf.write(name)
    buf.write(struct.pack("<I", 1))  # lanes
    buf.write(struct.pack("<QQ", len(records), 0))
    for r in records:
        buf.write(RECORD.pack(*r))
    return buf.getvalue()


def selftest():
    # Two virtual-clock captures: per-gate counts must sum across files,
    # blocked/barrier durations must accumulate, eval/send timeline records
    # must be ignored.
    rec = lambda kind, tick, aux, dur=0: (0, dur, 0, tick, aux, kind, 0)
    a = parse_trace(make_trace("sync-vp", True, [
        rec(GATE_EVAL, 5, 3), rec(NET_MSG, 2, 3), rec(GATE_EVAL, 7, 9),
        rec(BLOCKED, 0, 0, dur=40), rec(0, 1, 0),  # kind 0 = eval timeline
    ]), "a")
    b = parse_trace(make_trace("conservative-vp", True, [
        rec(GATE_EVAL, 10, 3), rec(BARRIER_WAIT, 0, 1, dur=7),
    ]), "b")
    prof = extract(["a", "b"], readers=[a, b])
    assert prof["evals"] == {"3": 15, "9": 7}, prof["evals"]
    assert prof["messages"] == {"3": 2}, prof["messages"]
    assert prof["blocked_units"] == 40 and prof["barrier_units"] == 7
    assert prof["clock"] == "virtual-units"
    assert prof["source"] == "sync-vp+conservative-vp"
    assert prof["total_evals"] == 22 and prof["total_messages"] == 2

    # A wall-clock capture parses with the other clock label.
    w = parse_trace(make_trace("synchronous", False, [rec(GATE_EVAL, 1, 0)]),
                    "w")
    assert extract(["w"], readers=[w])["clock"] == "wall-ns"

    # Mixing clock domains must be refused (exit 2), not silently summed.
    try:
        extract(["a", "w"], readers=[a, w])
    except SystemExit as e:
        assert e.code == 2, e.code
    else:
        raise AssertionError("clock mismatch not detected")

    # Truncated record payloads must be a hard error, not a short read.
    blob = make_trace("x", True, [rec(GATE_EVAL, 1, 0)])
    try:
        parse_trace(blob[:-8], "t")
    except SystemExit as e:
        assert e.code == 2, e.code
    else:
        raise AssertionError("truncation not detected")

    print("activity_from_trace: selftest ok")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="*", help="binary PLSIM_TRACE captures")
    ap.add_argument("--out", metavar="FILE",
                    help="write the JSON profile here instead of stdout")
    ap.add_argument("--top", type=int, default=0, metavar="N",
                    help="also print the N most-active gates to stderr")
    ap.add_argument("--selftest", action="store_true",
                    help="run the built-in regression checks and exit")
    args = ap.parse_args()
    if args.selftest:
        return selftest()
    if not args.traces:
        die("no trace files given (or use --selftest)")

    prof = extract(args.traces)
    text = json.dumps(prof, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text + "\n")
    else:
        print(text)
    if args.top > 0:
        ranked = sorted(prof["evals"].items(), key=lambda kv: -kv[1])
        for g, n in ranked[:args.top]:
            msgs = prof["messages"].get(g, 0)
            print(f"gate {g}: {n} evals, {msgs} messages", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
