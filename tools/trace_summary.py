#!/usr/bin/env python3
"""Summarize plsim binary traces (magic PLSTRC1, written by src/trace).

Usage:
    trace_summary.py TRACE.bin [MORE.bin ...] [--lp N] [--histogram]
                     [--timeline [N]]
    trace_summary.py TRACE.bin --chrome OUT.json
    trace_summary.py --selftest

Several captures may be summarized together (records are concatenated,
engine names joined with '+'), but only when they agree on the clock that
produced them — the header flags whether times are wall nanoseconds or
virtual work units, and mixing the two would add incommensurable numbers.
A mismatch is reported clearly and exits with status 2.

Default output: the file header, then a per-LP table (records, spans,
time-in-state breakdown per record kind), a per-LP slack table (the
critical-path residual: how long each LP sat finished while the slowest
lane was still working — the signal the critical-path-guided speculation
throttle consumes), and the aggregate time-in-state breakdown across all
lanes. Optional views:

  --timeline [N]   per-LP event timelines (first N records per LP, default
                   20; 0 = all), in emission order
  --histogram      rollback cascade depth histogram: antimessage records
                   (aux = destination LP) are linked to the next rollback on
                   that destination; chains of linked rollbacks form a
                   cascade whose depth is counted
  --lp N           restrict every view to one logical process
  --chrome OUT     convert to Chrome/Perfetto trace-event JSON (load via
                   chrome://tracing or https://ui.perfetto.dev)

Times print as milliseconds for wall-clock traces and work units for
virtual-platform traces (the header flags which clock produced the file).

Exit status: 0 = ok, 2 = usage/format error.
"""

import argparse
import json
import os
import struct
import sys
from collections import defaultdict

MAGIC = b"PLSTRC1\n"
RECORD = struct.Struct("<QIIQIHH")  # start, dur, lp, tick, aux, kind, pad

KIND_NAMES = [
    "eval", "send", "recv", "null-msg", "rollback",
    "antimessage", "barrier-wait", "gvt-round", "blocked",
    "gate-eval", "net-msg",
]

(EVAL, SEND, RECV, NULLMSG, ROLLBACK, ANTIMSG, BARRIER, GVT, BLOCKED,
 GATE_EVAL, NET_MSG) = range(11)


def kind_name(k):
    return KIND_NAMES[k] if k < len(KIND_NAMES) else f"kind{k}"


def load(path):
    """Parse the binary trace; returns (header dict, list of record tuples)."""
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        sys.exit(f"trace_summary: cannot read {path}: {e}")
    return parse(data, path)


def parse(data, path):
    """Parse one in-memory capture (the selftest feeds synthetic bytes)."""
    if data[:8] != MAGIC:
        sys.exit(f"trace_summary: {path}: bad magic (not a plsim trace)")
    off = 8

    def u32():
        nonlocal off
        (v,) = struct.unpack_from("<I", data, off)
        off += 4
        return v

    def u64():
        nonlocal off
        (v,) = struct.unpack_from("<Q", data, off)
        off += 8
        return v

    try:
        version = u32()
        if version != 1:
            sys.exit(f"trace_summary: {path}: unsupported version {version}")
        flags = u32()
        name_len = u32()
        engine = data[off:off + name_len].decode("utf-8", "replace")
        off += name_len
        lanes = u32()
        n_records = u64()
        dropped = u64()
        expected = off + n_records * RECORD.size
        if expected > len(data):
            sys.exit(f"trace_summary: {path}: truncated "
                     f"({len(data)} bytes, need {expected})")
        records = [RECORD.unpack_from(data, off + i * RECORD.size)
                   for i in range(n_records)]
    except struct.error as e:
        sys.exit(f"trace_summary: {path}: truncated header: {e}")
    header = {
        "engine": engine,
        "lanes": lanes,
        "records": n_records,
        "dropped": dropped,
        "virtual_clock": bool(flags & 1),
    }
    return header, records


def load_all(paths):
    """Load several captures into one (header, records) pair. Refuses to
    aggregate traces from different clock domains: summed span times would
    mix wall nanoseconds with virtual work units."""
    header, records = load(paths[0])
    for path in paths[1:]:
        h, recs = load(path)
        if h["virtual_clock"] != header["virtual_clock"]:
            this = ("virtual work units" if h["virtual_clock"]
                    else "wall nanoseconds")
            print(f"trace_summary: clock-unit mismatch — '{path}' records "
                  f"{this} but earlier captures record the other; "
                  f"aggregate only traces from the same clock domain",
                  file=sys.stderr)
            sys.exit(2)
        if h["engine"] not in header["engine"].split("+"):
            header["engine"] += "+" + h["engine"]
        header["lanes"] = max(header["lanes"], h["lanes"])
        header["records"] += h["records"]
        header["dropped"] += h["dropped"]
        records.extend(recs)
    return header, records


def fmt_time(raw, virtual):
    """Raw units are ns (wall) or milli-work-units (virtual)."""
    if virtual:
        return f"{raw / 1000.0:.3f}u"
    return f"{raw / 1e6:.3f}ms"


def per_lp_summary(records, virtual, only_lp=None):
    by_lp = defaultdict(lambda: {"records": 0, "spans": 0,
                                 "time": defaultdict(int),
                                 "count": defaultdict(int)})
    for start, dur, lp, tick, aux, kind, _pad in records:
        if only_lp is not None and lp != only_lp:
            continue
        s = by_lp[lp]
        s["records"] += 1
        s["count"][kind] += 1
        if dur > 0:
            s["spans"] += 1
            s["time"][kind] += dur
    return by_lp


def lp_slack(records, only_lp=None):
    """Per-LP critical-path residual.

    finish[lp] = max(start + dur) over the LP's timeline records; the overall
    end is the latest finish across all lanes. slack[lp] = overall_end -
    finish[lp]: zero for the lane that determined the run's length (the
    critical path), positive for lanes that sat done while it worked. The
    end-of-run activity summary records (gate-eval / net-msg) carry counters,
    not times, and are excluded.

    Returns (slack dict, overall_end).
    """
    finish = {}
    for start, dur, lp, _tick, _aux, kind, _pad in records:
        if only_lp is not None and lp != only_lp:
            continue
        if kind in (GATE_EVAL, NET_MSG):
            continue
        end = start + dur
        if end > finish.get(lp, 0):
            finish[lp] = end
    overall = max(finish.values(), default=0)
    return {lp: overall - f for lp, f in finish.items()}, overall


def print_slack(records, virtual, only_lp):
    slack, overall = lp_slack(records, only_lp)
    if not slack:
        return
    print(f"\nper-LP slack (critical-path residual; run ends at "
          f"{fmt_time(overall, virtual)}):")
    for lp in sorted(slack):
        tag = "  <- critical path" if slack[lp] == 0 else ""
        print(f"  lp {lp:4d}: slack={fmt_time(slack[lp], virtual):>14s}{tag}")


def print_summary(header, records, only_lp):
    virtual = header["virtual_clock"]
    print(f"engine:  {header['engine']}")
    print(f"clock:   {'virtual work units' if virtual else 'wall ns'}")
    print(f"lanes:   {header['lanes']}")
    print(f"records: {header['records']}"
          + (f" (+{header['dropped']} dropped at ring wrap)"
             if header["dropped"] else ""))
    by_lp = per_lp_summary(records, virtual, only_lp)
    if not by_lp:
        print("no records")
        return

    print("\nper-LP time in state (spans only):")
    total_time = defaultdict(int)
    total_count = defaultdict(int)
    for lp in sorted(by_lp):
        s = by_lp[lp]
        states = " ".join(
            f"{kind_name(k)}={fmt_time(t, virtual)}"
            for k, t in sorted(s["time"].items(), key=lambda kv: -kv[1]))
        print(f"  lp {lp:4d}: {s['records']:7d} records "
              f"({s['spans']} spans) {states}")
        for k, t in s["time"].items():
            total_time[k] += t
        for k, n in s["count"].items():
            total_count[k] += n

    print_slack(records, virtual, only_lp)

    print("\naggregate:")
    span_total = sum(total_time.values())
    for k in sorted(total_time, key=lambda k: -total_time[k]):
        share = 100.0 * total_time[k] / span_total if span_total else 0.0
        print(f"  {kind_name(k):13s} {fmt_time(total_time[k], virtual):>14s} "
              f"{share:5.1f}%  ({total_count[k]} records)")
    for k in sorted(total_count):
        if k not in total_time:
            print(f"  {kind_name(k):13s} {'-':>14s}   -    "
                  f"({total_count[k]} records)")


def print_timeline(records, virtual, limit, only_lp):
    by_lp = defaultdict(list)
    for rec in records:
        if only_lp is not None and rec[2] != only_lp:
            continue
        by_lp[rec[2]].append(rec)
    for lp in sorted(by_lp):
        recs = by_lp[lp]
        shown = recs if limit == 0 else recs[:limit]
        print(f"\nlp {lp} timeline ({len(shown)}/{len(recs)} records):")
        for start, dur, _lp, tick, aux, kind, _pad in shown:
            span = (f" +{fmt_time(dur, virtual)}" if dur > 0 else "")
            print(f"  {fmt_time(start, virtual):>14s}{span:>12s} "
                  f"{kind_name(kind):13s} tick={tick} aux={aux}")


def cascade_histogram(records, only_lp=None):
    """Rollback cascade depths.

    An antimessage record on LP a with aux = destination LP b is linked to
    the first rollback on b that follows it in time; if that rollback's own
    antimessages trigger further rollbacks the links form a chain. The
    histogram counts the depth of each maximal chain (a rollback with no
    incoming antimessage link starts a cascade at depth 1).
    """
    rollbacks = sorted(
        (r for r in records if r[5] == ROLLBACK
         and (only_lp is None or r[2] == only_lp)),
        key=lambda r: r[0])
    antis = sorted((r for r in records if r[5] == ANTIMSG),
                   key=lambda r: r[0])
    by_dst = defaultdict(list)  # dst lp -> [(time, src lp)]
    for start, _dur, lp, _tick, aux, _kind, _pad in antis:
        by_dst[aux].append((start, lp))

    # depth[rollback index] = 1 + depth of the rollback whose antimessage
    # caused it (the latest antimessage into this LP before the rollback).
    rb_by_lp = defaultdict(list)  # lp -> [(time, index)]
    for i, r in enumerate(rollbacks):
        rb_by_lp[r[2]].append((r[0], i))
    depth = [1] * len(rollbacks)
    for i, r in enumerate(rollbacks):
        lp, t = r[2], r[0]
        best = None
        for at, src in by_dst.get(lp, ()):  # antis into this LP before t
            if at <= t and (best is None or at > best[0]):
                best = (at, src)
        if best is None:
            continue
        # the causing rollback: latest rollback on the source LP at/before
        # the antimessage's time
        cause = None
        for rt, ri in rb_by_lp.get(best[1], ()):
            if rt <= best[0] and (cause is None or rt > cause[0]):
                cause = (rt, ri)
        if cause is not None and cause[1] != i:
            depth[i] = depth[cause[1]] + 1

    hist = defaultdict(int)
    for d in depth:
        hist[d] += 1
    return hist


def print_histogram(records, only_lp):
    hist = cascade_histogram(records, only_lp)
    print("\nrollback cascade depth histogram:")
    if not hist:
        print("  (no rollbacks)")
        return
    width = max(hist.values())
    for d in sorted(hist):
        bar = "#" * max(1, round(40 * hist[d] / width))
        print(f"  depth {d:3d}: {hist[d]:7d} {bar}")


def write_chrome(header, records, out_path):
    events = [{"ph": "M", "pid": 0, "name": "process_name",
               "args": {"name": f"plsim:{header['engine']}"}}]
    for start, dur, lp, tick, aux, kind, _pad in records:
        ev = {"pid": 0, "tid": lp, "ts": start / 1000.0,
              "name": kind_name(kind), "args": {"tick": tick, "aux": aux}}
        if dur > 0:
            ev.update(ph="X", dur=dur / 1000.0)
        else:
            ev.update(ph="i", s="t")
        events.append(ev)
    doc = {"displayTimeUnit": "ms", "traceEvents": events}
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    print(f"trace_summary: wrote {out_path} ({len(events) - 1} events)")


def make_trace(engine, virtual, records, lanes=1):
    """Assemble a binary capture in memory (selftest helper)."""
    import io
    buf = io.BytesIO()
    buf.write(MAGIC)
    buf.write(struct.pack("<II", 1, 1 if virtual else 0))
    name = engine.encode()
    buf.write(struct.pack("<I", len(name)))
    buf.write(name)
    buf.write(struct.pack("<I", lanes))
    buf.write(struct.pack("<QQ", len(records), 0))
    for r in records:
        buf.write(RECORD.pack(*r))
    return buf.getvalue()


def selftest():
    rec = lambda kind, lp, start, dur=0, tick=0, aux=0: (
        start, dur, lp, tick, aux, kind, 0)
    # Three lanes: lp0 works until 100, lp1 until 60, lp2 until 85. The
    # slack table must pin lp0 to the critical path (slack 0) and report
    # each other lane's residual against the common end.
    blob = make_trace("timewarp-vp", True, [
        rec(EVAL, 0, 10, dur=90, tick=5),
        rec(EVAL, 1, 0, dur=40, tick=3),
        rec(BLOCKED, 1, 40, dur=20),
        rec(EVAL, 2, 5, dur=80, tick=7),
        rec(SEND, 2, 70, tick=9, aux=1),       # mark: dur 0, ends at 70
        rec(GATE_EVAL, 1, 0, tick=999, aux=4), # summary: must not move ends
    ], lanes=3)
    header, records = parse(blob, "synthetic")
    assert header["engine"] == "timewarp-vp" and header["lanes"] == 3
    assert header["virtual_clock"] and header["records"] == 6

    slack, overall = lp_slack(records)
    assert overall == 100, overall
    assert slack == {0: 0, 1: 40, 2: 15}, slack
    # --lp restriction: a lone lane is its own critical path.
    slack1, overall1 = lp_slack(records, only_lp=1)
    assert overall1 == 60 and slack1 == {1: 0}, (slack1, overall1)

    # Time-in-state sums feed the same table the slack rows extend.
    by_lp = per_lp_summary(records, True)
    assert by_lp[1]["time"][EVAL] == 40 and by_lp[1]["time"][BLOCKED] == 20
    assert by_lp[2]["spans"] == 1 and by_lp[2]["records"] == 2

    # Truncated payloads must be a hard error, not a short read.
    try:
        parse(blob[:-8], "truncated")
    except SystemExit:
        pass
    else:
        raise AssertionError("truncation not detected")
    # And so must a foreign magic.
    try:
        parse(b"NOTATRACE" + blob, "bad-magic")
    except SystemExit:
        pass
    else:
        raise AssertionError("bad magic not detected")

    print("trace_summary: selftest ok")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="*", metavar="trace",
                    help="binary captures (same clock domain)")
    ap.add_argument("--lp", type=int, default=None,
                    help="restrict to one logical process")
    ap.add_argument("--timeline", type=int, nargs="?", const=20,
                    default=None, metavar="N",
                    help="print per-LP timelines (N records per LP, 0=all)")
    ap.add_argument("--histogram", action="store_true",
                    help="rollback cascade depth histogram")
    ap.add_argument("--chrome", metavar="OUT",
                    help="convert to Chrome trace-event JSON and exit")
    ap.add_argument("--selftest", action="store_true",
                    help="run the built-in regression checks and exit")
    args = ap.parse_args()
    if args.selftest:
        return selftest()
    if not args.traces:
        ap.error("no trace files given (or use --selftest)")

    header, records = load_all(args.traces)
    if args.chrome:
        write_chrome(header, records, args.chrome)
        return 0
    print_summary(header, records, args.lp)
    if args.timeline is not None:
        print_timeline(records, header["virtual_clock"], args.timeline,
                       args.lp)
    if args.histogram:
        print_histogram(records, args.lp)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piping into `head` closes stdout early; that's not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
