#!/usr/bin/env python3
"""Summarize plsim binary traces (magic PLSTRC1, written by src/trace).

Usage:
    trace_summary.py TRACE.bin [MORE.bin ...] [--lp N] [--histogram]
                     [--timeline [N]]
    trace_summary.py TRACE.bin --chrome OUT.json

Several captures may be summarized together (records are concatenated,
engine names joined with '+'), but only when they agree on the clock that
produced them — the header flags whether times are wall nanoseconds or
virtual work units, and mixing the two would add incommensurable numbers.
A mismatch is reported clearly and exits with status 2.

Default output: the file header, then a per-LP table (records, spans,
time-in-state breakdown per record kind) and the aggregate time-in-state
breakdown across all lanes. Optional views:

  --timeline [N]   per-LP event timelines (first N records per LP, default
                   20; 0 = all), in emission order
  --histogram      rollback cascade depth histogram: antimessage records
                   (aux = destination LP) are linked to the next rollback on
                   that destination; chains of linked rollbacks form a
                   cascade whose depth is counted
  --lp N           restrict every view to one logical process
  --chrome OUT     convert to Chrome/Perfetto trace-event JSON (load via
                   chrome://tracing or https://ui.perfetto.dev)

Times print as milliseconds for wall-clock traces and work units for
virtual-platform traces (the header flags which clock produced the file).

Exit status: 0 = ok, 2 = usage/format error.
"""

import argparse
import json
import os
import struct
import sys
from collections import defaultdict

MAGIC = b"PLSTRC1\n"
RECORD = struct.Struct("<QIIQIHH")  # start, dur, lp, tick, aux, kind, pad

KIND_NAMES = [
    "eval", "send", "recv", "null-msg", "rollback",
    "antimessage", "barrier-wait", "gvt-round", "blocked",
    "gate-eval", "net-msg",
]

(EVAL, SEND, RECV, NULLMSG, ROLLBACK, ANTIMSG, BARRIER, GVT, BLOCKED,
 GATE_EVAL, NET_MSG) = range(11)


def kind_name(k):
    return KIND_NAMES[k] if k < len(KIND_NAMES) else f"kind{k}"


def load(path):
    """Parse the binary trace; returns (header dict, list of record tuples)."""
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        sys.exit(f"trace_summary: cannot read {path}: {e}")
    if data[:8] != MAGIC:
        sys.exit(f"trace_summary: {path}: bad magic (not a plsim trace)")
    off = 8

    def u32():
        nonlocal off
        (v,) = struct.unpack_from("<I", data, off)
        off += 4
        return v

    def u64():
        nonlocal off
        (v,) = struct.unpack_from("<Q", data, off)
        off += 8
        return v

    try:
        version = u32()
        if version != 1:
            sys.exit(f"trace_summary: {path}: unsupported version {version}")
        flags = u32()
        name_len = u32()
        engine = data[off:off + name_len].decode("utf-8", "replace")
        off += name_len
        lanes = u32()
        n_records = u64()
        dropped = u64()
        expected = off + n_records * RECORD.size
        if expected > len(data):
            sys.exit(f"trace_summary: {path}: truncated "
                     f"({len(data)} bytes, need {expected})")
        records = [RECORD.unpack_from(data, off + i * RECORD.size)
                   for i in range(n_records)]
    except struct.error as e:
        sys.exit(f"trace_summary: {path}: truncated header: {e}")
    header = {
        "engine": engine,
        "lanes": lanes,
        "records": n_records,
        "dropped": dropped,
        "virtual_clock": bool(flags & 1),
    }
    return header, records


def load_all(paths):
    """Load several captures into one (header, records) pair. Refuses to
    aggregate traces from different clock domains: summed span times would
    mix wall nanoseconds with virtual work units."""
    header, records = load(paths[0])
    for path in paths[1:]:
        h, recs = load(path)
        if h["virtual_clock"] != header["virtual_clock"]:
            this = ("virtual work units" if h["virtual_clock"]
                    else "wall nanoseconds")
            print(f"trace_summary: clock-unit mismatch — '{path}' records "
                  f"{this} but earlier captures record the other; "
                  f"aggregate only traces from the same clock domain",
                  file=sys.stderr)
            sys.exit(2)
        if h["engine"] not in header["engine"].split("+"):
            header["engine"] += "+" + h["engine"]
        header["lanes"] = max(header["lanes"], h["lanes"])
        header["records"] += h["records"]
        header["dropped"] += h["dropped"]
        records.extend(recs)
    return header, records


def fmt_time(raw, virtual):
    """Raw units are ns (wall) or milli-work-units (virtual)."""
    if virtual:
        return f"{raw / 1000.0:.3f}u"
    return f"{raw / 1e6:.3f}ms"


def per_lp_summary(records, virtual, only_lp=None):
    by_lp = defaultdict(lambda: {"records": 0, "spans": 0,
                                 "time": defaultdict(int),
                                 "count": defaultdict(int)})
    for start, dur, lp, tick, aux, kind, _pad in records:
        if only_lp is not None and lp != only_lp:
            continue
        s = by_lp[lp]
        s["records"] += 1
        s["count"][kind] += 1
        if dur > 0:
            s["spans"] += 1
            s["time"][kind] += dur
    return by_lp


def print_summary(header, records, only_lp):
    virtual = header["virtual_clock"]
    print(f"engine:  {header['engine']}")
    print(f"clock:   {'virtual work units' if virtual else 'wall ns'}")
    print(f"lanes:   {header['lanes']}")
    print(f"records: {header['records']}"
          + (f" (+{header['dropped']} dropped at ring wrap)"
             if header["dropped"] else ""))
    by_lp = per_lp_summary(records, virtual, only_lp)
    if not by_lp:
        print("no records")
        return

    print("\nper-LP time in state (spans only):")
    total_time = defaultdict(int)
    total_count = defaultdict(int)
    for lp in sorted(by_lp):
        s = by_lp[lp]
        states = " ".join(
            f"{kind_name(k)}={fmt_time(t, virtual)}"
            for k, t in sorted(s["time"].items(), key=lambda kv: -kv[1]))
        print(f"  lp {lp:4d}: {s['records']:7d} records "
              f"({s['spans']} spans) {states}")
        for k, t in s["time"].items():
            total_time[k] += t
        for k, n in s["count"].items():
            total_count[k] += n

    print("\naggregate:")
    span_total = sum(total_time.values())
    for k in sorted(total_time, key=lambda k: -total_time[k]):
        share = 100.0 * total_time[k] / span_total if span_total else 0.0
        print(f"  {kind_name(k):13s} {fmt_time(total_time[k], virtual):>14s} "
              f"{share:5.1f}%  ({total_count[k]} records)")
    for k in sorted(total_count):
        if k not in total_time:
            print(f"  {kind_name(k):13s} {'-':>14s}   -    "
                  f"({total_count[k]} records)")


def print_timeline(records, virtual, limit, only_lp):
    by_lp = defaultdict(list)
    for rec in records:
        if only_lp is not None and rec[2] != only_lp:
            continue
        by_lp[rec[2]].append(rec)
    for lp in sorted(by_lp):
        recs = by_lp[lp]
        shown = recs if limit == 0 else recs[:limit]
        print(f"\nlp {lp} timeline ({len(shown)}/{len(recs)} records):")
        for start, dur, _lp, tick, aux, kind, _pad in shown:
            span = (f" +{fmt_time(dur, virtual)}" if dur > 0 else "")
            print(f"  {fmt_time(start, virtual):>14s}{span:>12s} "
                  f"{kind_name(kind):13s} tick={tick} aux={aux}")


def cascade_histogram(records, only_lp=None):
    """Rollback cascade depths.

    An antimessage record on LP a with aux = destination LP b is linked to
    the first rollback on b that follows it in time; if that rollback's own
    antimessages trigger further rollbacks the links form a chain. The
    histogram counts the depth of each maximal chain (a rollback with no
    incoming antimessage link starts a cascade at depth 1).
    """
    rollbacks = sorted(
        (r for r in records if r[5] == ROLLBACK
         and (only_lp is None or r[2] == only_lp)),
        key=lambda r: r[0])
    antis = sorted((r for r in records if r[5] == ANTIMSG),
                   key=lambda r: r[0])
    by_dst = defaultdict(list)  # dst lp -> [(time, src lp)]
    for start, _dur, lp, _tick, aux, _kind, _pad in antis:
        by_dst[aux].append((start, lp))

    # depth[rollback index] = 1 + depth of the rollback whose antimessage
    # caused it (the latest antimessage into this LP before the rollback).
    rb_by_lp = defaultdict(list)  # lp -> [(time, index)]
    for i, r in enumerate(rollbacks):
        rb_by_lp[r[2]].append((r[0], i))
    depth = [1] * len(rollbacks)
    for i, r in enumerate(rollbacks):
        lp, t = r[2], r[0]
        best = None
        for at, src in by_dst.get(lp, ()):  # antis into this LP before t
            if at <= t and (best is None or at > best[0]):
                best = (at, src)
        if best is None:
            continue
        # the causing rollback: latest rollback on the source LP at/before
        # the antimessage's time
        cause = None
        for rt, ri in rb_by_lp.get(best[1], ()):
            if rt <= best[0] and (cause is None or rt > cause[0]):
                cause = (rt, ri)
        if cause is not None and cause[1] != i:
            depth[i] = depth[cause[1]] + 1

    hist = defaultdict(int)
    for d in depth:
        hist[d] += 1
    return hist


def print_histogram(records, only_lp):
    hist = cascade_histogram(records, only_lp)
    print("\nrollback cascade depth histogram:")
    if not hist:
        print("  (no rollbacks)")
        return
    width = max(hist.values())
    for d in sorted(hist):
        bar = "#" * max(1, round(40 * hist[d] / width))
        print(f"  depth {d:3d}: {hist[d]:7d} {bar}")


def write_chrome(header, records, out_path):
    events = [{"ph": "M", "pid": 0, "name": "process_name",
               "args": {"name": f"plsim:{header['engine']}"}}]
    for start, dur, lp, tick, aux, kind, _pad in records:
        ev = {"pid": 0, "tid": lp, "ts": start / 1000.0,
              "name": kind_name(kind), "args": {"tick": tick, "aux": aux}}
        if dur > 0:
            ev.update(ph="X", dur=dur / 1000.0)
        else:
            ev.update(ph="i", s="t")
        events.append(ev)
    doc = {"displayTimeUnit": "ms", "traceEvents": events}
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    print(f"trace_summary: wrote {out_path} ({len(events) - 1} events)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="+", metavar="trace",
                    help="binary captures (same clock domain)")
    ap.add_argument("--lp", type=int, default=None,
                    help="restrict to one logical process")
    ap.add_argument("--timeline", type=int, nargs="?", const=20,
                    default=None, metavar="N",
                    help="print per-LP timelines (N records per LP, 0=all)")
    ap.add_argument("--histogram", action="store_true",
                    help="rollback cascade depth histogram")
    ap.add_argument("--chrome", metavar="OUT",
                    help="convert to Chrome trace-event JSON and exit")
    args = ap.parse_args()

    header, records = load_all(args.traces)
    if args.chrome:
        write_chrome(header, records, args.chrome)
        return 0
    print_summary(header, records, args.lp)
    if args.timeline is not None:
        print_timeline(records, header["virtual_clock"], args.timeline,
                       args.lp)
    if args.histogram:
        print_histogram(records, args.lp)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piping into `head` closes stdout early; that's not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
