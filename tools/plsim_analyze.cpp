// Netlist lint & optimization CLI over src/analyze.
//
//   plsim_analyze [options] <circuit>...
//
//   <circuit> is a builtin name (c17, s27), an ISCAS profile name (c880,
//   s5378, ...), a path to a .bench file, or a generator spec:
//       random:<gates>[:seed]    adder:<bits>      multiplier:<bits>
//       counter:<bits>           modules:<n>[:seed]
//
//   --json <file|->      write the plsim-analyze-v1 report (golden-compared
//                        in CI via tools/analyze_compare.py)
//   --opt <level>        none | safe | aggressive (default safe) — level for
//                        the optimize stats block and --measure
//   --period <ticks>     clock period for aggressive sequential analysis
//   --measure            also run the optimized vs. unoptimized simulation
//                        and print eval-count / ns-per-vector reductions
//
// Exit status: 0 all circuits clean (warnings allowed), 1 any error-severity
// finding (including parse errors), 2 usage.
//
// .bench files are parsed to a *builder* (not a built Circuit), so the
// malformed netlists Builder::build() rejects — combinational cycles,
// floating gates, arity violations — come out as structured findings with
// the full gate path instead of a thrown first-error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/opt.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/builtin.hpp"
#include "netlist/generators.hpp"
#include "seq/golden.hpp"
#include "stim/stimulus.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

using namespace plsim;

namespace {

struct Options {
  std::string json_path;  // empty = no JSON, "-" = stdout
  PlanOpt opt = PlanOpt::Safe;
  Tick period = 0;
  bool measure = false;
  /// Exit 0 even when error findings exist — for golden-compare runs whose
  /// input set deliberately includes malformed netlists.
  bool allow_errors = false;
  std::vector<std::string> circuits;
};

/// Generator spec "kind:param[:seed]" -> circuit, or nullopt if `spec`
/// doesn't look like one.
std::optional<Circuit> generated_circuit(const std::string& spec) {
  const auto c1 = spec.find(':');
  if (c1 == std::string::npos) return std::nullopt;
  const std::string kind = spec.substr(0, c1);
  const auto c2 = spec.find(':', c1 + 1);
  const std::string arg = spec.substr(c1 + 1, c2 == std::string::npos
                                                  ? std::string::npos
                                                  : c2 - c1 - 1);
  const int param = std::stoi(arg);
  const std::uint64_t seed =
      c2 == std::string::npos ? 1 : std::stoull(spec.substr(c2 + 1));
  if (kind == "random") return scaled_circuit(param, seed);
  if (kind == "adder") return ripple_adder(param);
  if (kind == "multiplier") return array_multiplier(param);
  if (kind == "counter") return counter(param);
  if (kind == "modules") return module_array(param, 200, seed);
  return std::nullopt;
}

/// One analyzed circuit: the report plus, when structurally valid, the
/// built Circuit for the optimize/measure stages.
struct Analyzed {
  AnalysisReport report;
  std::optional<Circuit> circuit;
};

Analyzed analyze_one(const std::string& spec) {
  Analyzed out;
  try {
    for (auto builtin : builtin_circuit_names())
      if (spec == builtin) {
        out.circuit = builtin_circuit(spec);
        out.report = analyze_circuit(*out.circuit, spec);
        return out;
      }
    for (const auto& prof : iscas_profiles())
      if (spec == prof.name) {
        out.circuit = iscas_profile_circuit(spec);
        out.report = analyze_circuit(*out.circuit, spec);
        return out;
      }
    if (std::optional<Circuit> gen = generated_circuit(spec)) {
      out.circuit = std::move(*gen);
      out.report = analyze_circuit(*out.circuit, spec);
      return out;
    }
    // Report files under their basename so golden reports stay stable
    // across checkouts.
    const std::string display = std::filesystem::path(spec).filename();
    std::ifstream is(spec);
    PLSIM_CHECK(is.good(), "cannot open bench file: " + spec);
    NetlistBuilder b = parse_bench_builder(is);
    out.report = analyze_netlist(b, display);
    if (out.report.ok()) out.circuit = b.build();
  } catch (const std::exception& e) {
    out.circuit.reset();
    out.report.circuit = std::filesystem::path(spec).filename();
    out.report.findings.push_back(
        Finding{"parse-error", Severity::Error, e.what(), {}});
  }
  return out;
}

JsonValue opt_stats_json(PlanOpt level, const OptStats& st) {
  JsonValue o = JsonValue::object();
  o.set("level", std::string(plan_opt_name(level)));
  o.set("gates_before", static_cast<std::uint64_t>(st.gates_before));
  o.set("gates_after", static_cast<std::uint64_t>(st.gates_after));
  o.set("folded", static_cast<std::uint64_t>(st.folded));
  o.set("merged", static_cast<std::uint64_t>(st.merged));
  o.set("removed", static_cast<std::uint64_t>(st.removed));
  return o;
}

/// Minimum-of-3 golden-simulation wall time, seconds.
double sim_seconds(const Circuit& c, const Stimulus& stim) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const RunResult r = simulate_golden(c, stim);
    best = std::min(best, r.wall_seconds);
  }
  return best;
}

void print_report(const AnalysisReport& r) {
  std::cout << "== " << r.circuit << (r.ok() ? " (ok)" : " (ERRORS)") << ": "
            << r.stats.gates << " gates, " << r.stats.inputs << " inputs, "
            << r.stats.outputs << " outputs, " << r.stats.dffs
            << " dffs, depth " << r.stats.depth << ", max fanout "
            << r.stats.max_fanout << "\n";
  for (const Finding& f : r.findings)
    std::cout << "  [" << severity_name(f.severity) << "] " << f.rule << ": "
              << f.message << "\n";
}

int run(const Options& opt) {
  std::vector<AnalysisReport> reports;
  std::vector<JsonValue> opt_blocks;  // parallel to reports; Null if none
  Table measured({"circuit", "gates", "gates_opt", "evals", "evals_opt",
                  "ns_per_vec", "ns_per_vec_opt"});
  bool any_error = false;

  for (const std::string& spec : opt.circuits) {
    Analyzed a = analyze_one(spec);
    print_report(a.report);
    any_error |= !a.report.ok();

    JsonValue opt_json;  // Null
    if (a.circuit && opt.opt != PlanOpt::None) {
      OptOptions oo;
      oo.level = opt.opt;
      oo.clock_period = opt.period;
      const OptimizedCircuit optimized = optimize_circuit(*a.circuit, oo);
      opt_json = opt_stats_json(opt.opt, optimized.stats);
      std::cout << "  optimize[" << plan_opt_name(opt.opt) << "]: "
                << optimized.stats.summary() << "\n";

      if (opt.measure) {
        const Circuit& c = *a.circuit;
        const std::size_t cycles = 50;
        const Stimulus stim = random_stimulus(c, cycles, 0.3, 7);
        const RunResult before = simulate_golden(c, stim);
        const RunResult after = simulate_golden(optimized.circuit, stim);
        const double ns_before =
            sim_seconds(c, stim) * 1e9 / static_cast<double>(cycles);
        const double ns_after = sim_seconds(optimized.circuit, stim) * 1e9 /
                                static_cast<double>(cycles);
        measured.add_row({a.report.circuit, Table::fmt(c.gate_count()),
                          Table::fmt(optimized.circuit.gate_count()),
                          Table::fmt(before.stats.evaluations),
                          Table::fmt(after.stats.evaluations),
                          Table::fmt(ns_before), Table::fmt(ns_after)});
      }
    }
    reports.push_back(std::move(a.report));
    opt_blocks.push_back(std::move(opt_json));
  }

  if (opt.measure) {
    std::cout << "\n";
    measured.print(std::cout);
  }

  if (!opt.json_path.empty()) {
    JsonValue o = JsonValue::object();
    o.set("schema", "plsim-analyze-v1");
    JsonValue circuits = JsonValue::array();
    for (std::size_t i = 0; i < reports.size(); ++i) {
      JsonValue cj = analysis_to_json(reports[i]);
      if (opt_blocks[i].is_object())
        cj.set("optimize", std::move(opt_blocks[i]));
      circuits.push_back(std::move(cj));
    }
    o.set("circuits", std::move(circuits));
    if (opt.json_path == "-") {
      o.dump(std::cout);
      std::cout << "\n";
    } else {
      std::ofstream os(opt.json_path);
      PLSIM_CHECK(os.good(), "cannot write " + opt.json_path);
      o.dump(os);
      os << "\n";
      std::cout << "report written to " << opt.json_path << "\n";
    }
  }
  return any_error && !opt.allow_errors ? 1 : 0;
}

int usage() {
  std::cerr
      << "usage: plsim_analyze [--json <file|->] [--opt none|safe|aggressive]"
         " [--period <ticks>] [--measure] <circuit>...\n"
         "  <circuit>: builtin (c17, s27), ISCAS profile (c880, ...), .bench"
         " path,\n             or generator spec random:<gates>[:seed],"
         " adder:<bits>, multiplier:<bits>,\n             counter:<bits>,"
         " modules:<n>[:seed]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc)
        opt.json_path = argv[++i];
      else if (arg == "--opt" && i + 1 < argc)
        opt.opt = plan_opt_from_name(argv[++i]);
      else if (arg == "--period" && i + 1 < argc)
        opt.period = std::stoull(argv[++i]);
      else if (arg == "--measure")
        opt.measure = true;
      else if (arg == "--allow-errors")
        opt.allow_errors = true;
      else if (!arg.empty() && arg[0] == '-')
        return usage();
      else
        opt.circuits.push_back(arg);
    }
    if (opt.circuits.empty()) return usage();
    return run(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
