#!/usr/bin/env python3
"""plsim-specific lint pass, run as a CTest test (see top-level CMakeLists).

Rules (each can be waived on a specific line with a trailing or preceding
comment `// plsim-lint: allow(<rule>)`):

  threading       Raw threading primitives (std::thread, std::mutex,
                  std::condition_variable, locks, and their headers) are
                  confined to src/parallel/. Everything else must use the
                  sanctioned wrappers: run_on_threads, Mailbox, the barriers,
                  Guarded<T>, or std::atomic. This keeps the surface the
                  thread sanitizer has to certify small.

  randomness      rand()/srand()/std::random_device/std::mt19937 are banned
                  everywhere except src/util/rng.hpp: all randomness flows
                  through the deterministic, seeded plsim::Rng so runs are
                  reproducible bit-for-bit.

  unordered-iter  Range-for over a std::unordered_{map,set} declared in the
                  same file is banned in src/engines/ and src/vp/: iteration
                  order is unspecified and can leak into message ordering,
                  stats, or modelled cost. Iterate a deterministic index
                  instead (or sort first).

  include-hygiene Quoted includes must be repo-root-relative module paths
                  ("logic/value.hpp"), never parent-relative ("../x.hpp");
                  system headers use <>.

  tick-add        Raw `+` on Tick-valued expressions (t + delay, frontier +
                  lookahead, front + window, ...) is banned in src/core/,
                  src/engines/, src/vp/, src/event/, src/seq/ and src/fault/:
                  Tick is unsigned, so an addition near the horizon wraps to
                  a small value and sails through every `>= horizon` clamp
                  (in src/fault it wraps detection timestamps). Use the
                  saturating plsim::tick_add (src/core/types.hpp) instead.

  packed-lane     Raw 64-lane word idioms (~0ull, ~1ull, 1ull << n) and
                  direct eval_gate64 calls are banned in the lane-carrying
                  modules (src/fault/, src/seq/, src/stim/, src/engines/,
                  src/core/): all lane arithmetic goes through the named
                  helpers of src/sim/packed.hpp (kAllLanes, kFaultLanes,
                  lane_mask, lanes_from_bool, broadcast_lane0, forced_word,
                  packed2_eval_gather) so the X-collapse and lane-0
                  conventions live in one translation unit. src/event/ keeps
                  its bitmap-summary words (different domain) and src/logic/
                  keeps the eval_gate64 definition.

  memory-order    Atomic operations (.load/.store/.exchange/.fetch_*/
                  .compare_exchange_*) must spell out an explicit
                  std::memory_order argument everywhere in src/. Defaulted
                  seq_cst hides the intended synchronization contract and
                  makes TSan reports impossible to audit against intent.

  plan-eval       Interpretive gate evaluation (eval_gate4/eval_gate9/... calls)
                  and raw Circuit fanin gathers (c.fanins(/circuit_.fanins()
                  are banned in src/core/block.cpp and src/engines/: those hot
                  paths run on the compiled SimPlan (src/sim/plan.hpp) —
                  BlockPlan records, local fanin index lists, and the LUT
                  kernels of src/sim/tables.hpp. Reintroducing the interpreter
                  there silently forfeits the compiled-plan speedup and splits
                  the semantics into two code paths.

  trace-macro     Direct use of plsim::trace_detail:: helpers is confined to
                  src/trace/. Instrumentation sites must go through the
                  PLSIM_TRACE_SCOPE/MARK/VMARK/VSPAN macros — those are what
                  compile to nothing under PLSIM_TRACING=OFF; a raw
                  trace_detail call would survive the build flag and charge
                  the hot path even in untraced builds.

  trace-format    The binary trace container (the "PLSTRC1" magic, header
                  layout, record packing) is parsed and emitted only in
                  src/trace/ (the writer plus the header-only reader) and
                  the two sanctioned tools, tools/trace_summary.py and
                  tools/activity_from_trace.py. Any other file naming the
                  magic is re-implementing the format and will silently
                  drift when it evolves — consume trace::read_trace_file
                  (C++) or the tools' JSON output instead. Unlike the other
                  rules this one also scans bench/, tests/, tools/ and
                  examples/, and Python files may waive it with
                  `# plsim-lint: allow(trace-format)`.

  block-order     Ad-hoc ordering (std::sort/stable_sort/partial_sort/
                  nth_element) is banned in src/engines/ and src/vp/: block
                  evaluation order is owned by src/partition/schedule.* (the
                  cache-aware scheduler), and engines must consume the
                  scheduled Partition's block ids as-is so the schedule stays
                  deterministic and testable. Sorts with a different purpose
                  (trace time order, DP evaluation order) carry an explicit
                  waiver.

  analyze-pass    Circuit construction/mutation (the NetlistBuilder type) is
                  confined to src/netlist/ and src/analyze/: everything
                  downstream of the analyzer consumes an immutable Circuit,
                  so every structural rewrite flows through the audited
                  analyze passes and their GateId translation tables instead
                  of ad-hoc rebuilds that silently break stimulus binding
                  and result merging.

  socket-confine  Raw socket code — the <sys/socket.h>/<sys/un.h> headers,
                  ::socket/::bind/::listen/::accept/::connect/::recv/::send
                  calls, sockaddr_un — is confined to src/server/ and the two
                  service binaries (tools/plsimd.cpp, tools/plsim_load.cpp).
                  Everything else, tests and benches included, talks to the
                  daemon through ServiceClient/UnixServer so the transport
                  surface stays small and auditable. Scans src/, bench/,
                  tests/, tools/ and examples/ like trace-format.

  header-selfcontained
                  Every public header in src/ must compile standalone
                  (`c++ -std=c++20 -fsyntax-only -I src header.hpp`): each
                  header includes what it uses rather than leaning on its
                  includers' include order. Skipped (with a notice) when no
                  C++ compiler is on PATH.

Usage: lint_plsim.py <repo-root>
Exit status 0 when clean, 1 with file:line diagnostics otherwise.
"""

import concurrent.futures
import re
import shutil
import subprocess
import sys
from pathlib import Path

CXX_EXTS = {".cpp", ".hpp", ".cc", ".hh", ".h"}

THREADING_USE = re.compile(
    r"\bstd::(thread|jthread|mutex|timed_mutex|recursive_mutex|shared_mutex"
    r"|condition_variable|condition_variable_any|lock_guard|unique_lock"
    r"|scoped_lock|shared_lock)\b"
)
THREADING_INCLUDE = re.compile(
    r'#\s*include\s*<(thread|mutex|condition_variable|shared_mutex|future)>'
)
RANDOMNESS = re.compile(
    r"(\bstd::(random_device|mt19937(_64)?|minstd_rand0?|default_random_engine)\b"
    r"|(?<![\w:])s?rand\s*\()"
)
UNORDERED_DECL = re.compile(
    r"\b(?:std::)?unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;{(=]"
)
RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*?:\s*([A-Za-z_][\w.\->\[\]]*)\s*\)")
QUOTED_INCLUDE = re.compile(r'#\s*include\s*"([^"]+)"')
WAIVER = re.compile(r"//\s*plsim-lint:\s*allow\(([\w-]+)\)")

# Identifiers that hold Tick values in this codebase (by convention and by
# audit of src/); `delay(...)`/`period`/`lookahead` cover the member/accessor
# spellings. The expression may be reached through any member chain
# (`opts_.clock_period`, `m.time`, `buffer_.top().time`).
_TICKISH = (
    r"(?:t|nt|when|tick|front|frontier|window|window_end|horizon|gvt|lvt"
    r"|promise|promised_?|lookahead_?|t_min|time|clock_period|period"
    r"|processed_bound|now_?|base_?|delay\s*\([^()]*\))"
)
TICK_ADD = re.compile(
    rf"(?:[A-Za-z_]\w*(?:\.|->|::))*\b{_TICKISH}\s*\+(?![+=])"
    rf"|(?<!\+)\+(?![+=])\s*(?:[A-Za-z_]\w*(?:\.|->|::))*\b{_TICKISH}\b(?!\s*\()"
)
# Member calls that are atomic operations; condition-variable wait/notify are
# deliberately absent.
ATOMIC_OP = re.compile(
    r"(?:\.|->)\s*(load|store|exchange|compare_exchange_weak"
    r"|compare_exchange_strong|fetch_add|fetch_sub|fetch_and|fetch_or"
    r"|fetch_xor)\s*\("
)
# Interpreter evaluation or a Circuit fanin gather in compiled-plan hot paths.
PLAN_EVAL = re.compile(
    r"\beval_gate[0-9]+\s*\("
    r"|\b(?:c|circuit|circuit_)\s*(?:\.|->)\s*fanins\s*\("
)
# Raw 64-lane word idioms outside the packed kernel translation unit.
PACKED_LANE = re.compile(
    r"~\s*0ull\b|~\s*1ull\b|\b1ull\s*<<|\beval_gate64\s*\("
)
# Raw tracing internals outside the trace module itself.
TRACE_DETAIL = re.compile(r"\btrace_detail\s*::")
# Ad-hoc ordering in engine code; block ordering lives in partition/schedule.
BLOCK_ORDER = re.compile(
    r"\bstd::(?:stable_sort|sort|partial_sort|nth_element)\s*\(")
# The only route that builds or rewrites a Circuit.
NETLIST_BUILDER = re.compile(r"\bNetlistBuilder\b")


def strip_comments_and_strings(line):
    """Blank out string/char literals and // comments so regexes don't match
    inside them. Good enough for this codebase (no multi-line /* */ in rules'
    scope; those are handled by the caller's block-comment tracker)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        ch = line[i]
        if ch == '"' or ch == "'":
            quote = ch
            out.append(ch)
            i += 1
            while i < n and line[i] != quote:
                out.append("x" if line[i] != "\\" else "x")
                i += 2 if line[i] == "\\" else 1
            if i < n:
                out.append(quote)
                i += 1
        elif ch == "/" and i + 1 < n and line[i + 1] == "/":
            break  # drop the comment (waivers are scanned on the raw line)
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def lint_file(path, rel, findings):
    text = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = text.splitlines()

    in_parallel = rel.startswith("src/parallel/")
    in_rng = rel == "src/util/rng.hpp"
    in_engine_code = rel.startswith(("src/engines/", "src/vp/"))
    in_tick_code = rel.startswith(
        ("src/core/", "src/engines/", "src/vp/", "src/event/", "src/seq/",
         "src/fault/"))
    in_lane_code = rel.startswith(
        ("src/fault/", "src/seq/", "src/stim/", "src/engines/", "src/core/"))
    in_plan_code = rel == "src/core/block.cpp" or rel.startswith("src/engines/")
    in_trace = rel.startswith("src/trace/")
    in_builder_code = rel.startswith(("src/netlist/", "src/analyze/"))
    in_src = rel.startswith("src/")

    # Names of unordered containers declared anywhere in this file.
    unordered_names = set(UNORDERED_DECL.findall(text))

    def waived(idx, rule):
        for line_no in (idx, idx - 1):
            if 0 <= line_no < len(raw_lines):
                m = WAIVER.search(raw_lines[line_no])
                if m and m.group(1) == rule:
                    return True
        return False

    def report(idx, rule, msg):
        if not waived(idx, rule):
            findings.append(f"{rel}:{idx + 1}: [{rule}] {msg}")

    code_lines = []
    in_block_comment = False
    for idx, raw in enumerate(raw_lines):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                code_lines.append("")
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        while start >= 0:
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]
            start = line.find("/*")
        code = strip_comments_and_strings(line)
        code_lines.append(code)

        if in_tick_code:
            m = TICK_ADD.search(code)
            if m and "tick_add" not in code:
                report(idx, "tick-add",
                       f"raw Tick addition '{m.group(0).strip()}' — unsigned "
                       "wrap near the horizon; use plsim::tick_add")

        if in_lane_code:
            m = PACKED_LANE.search(code)
            if m:
                report(idx, "packed-lane",
                       f"raw lane idiom '{m.group(0).strip()}' outside "
                       "sim/packed.hpp — use the named lane helpers "
                       "(kAllLanes/kFaultLanes/lane_mask/lanes_from_bool/"
                       "broadcast_lane0/forced_word/packed2_eval_gather)")

        if in_plan_code:
            m = PLAN_EVAL.search(code)
            if m:
                report(idx, "plan-eval",
                       f"interpretive '{m.group(0).strip()}' in a "
                       "compiled-plan hot path — use the BlockPlan/SimPlan "
                       "records and the plan_eval* LUT kernels")

        if in_src and not in_parallel:
            m = THREADING_USE.search(code)
            if m:
                report(idx, "threading",
                       f"raw std::{m.group(1)} outside src/parallel/ — use "
                       "run_on_threads/Mailbox/Guarded<T> (or std::atomic)")
            m = THREADING_INCLUDE.search(code)
            if m:
                report(idx, "threading",
                       f"#include <{m.group(1)}> outside src/parallel/")

        if in_src and not in_trace:
            m = TRACE_DETAIL.search(code)
            if m:
                report(idx, "trace-macro",
                       "raw trace_detail:: outside src/trace/ — use the "
                       "PLSIM_TRACE_* macros so the call compiles out under "
                       "PLSIM_TRACING=OFF")

        if in_src and not in_builder_code:
            m = NETLIST_BUILDER.search(code)
            if m:
                report(idx, "analyze-pass",
                       "NetlistBuilder outside src/netlist/+src/analyze/ — "
                       "structural rewrites must go through the analyze "
                       "passes (optimize_circuit) so GateId translation "
                       "stays consistent")

        if in_src and not in_rng:
            m = RANDOMNESS.search(code)
            if m:
                report(idx, "randomness",
                       "raw randomness outside src/util/rng.hpp — use the "
                       "seeded plsim::Rng")

        if in_engine_code:
            m = BLOCK_ORDER.search(code)
            if m:
                report(idx, "block-order",
                       f"'{m.group(0).strip('(').strip()}' in engine code — "
                       "block ordering is owned by src/partition/schedule.*; "
                       "waive explicitly if this sort orders something else")

        if in_engine_code and unordered_names:
            m = RANGE_FOR.search(code)
            if m:
                expr = m.group(1)
                base = re.split(r"[.\->\[]", expr)[-1] or expr
                if base in unordered_names or expr in unordered_names:
                    report(idx, "unordered-iter",
                           f"range-for over unordered container '{expr}' in "
                           "engine code — iteration order can leak into "
                           "results")

        # Match before string-stripping: the include path IS a string.
        m = QUOTED_INCLUDE.search(line)
        if m and in_src:
            inc = m.group(1)
            if inc.startswith("../") or "/../" in inc:
                report(idx, "include-hygiene",
                       f'parent-relative include "{inc}" — use the '
                       "repo-root-relative module path")

    # Atomic calls can span lines (the order argument often sits on its own
    # line), so this rule scans the joined comment-stripped text.
    if in_src:
        joined = "\n".join(code_lines)
        for m in ATOMIC_OP.finditer(joined):
            depth, i = 1, m.end()
            while i < len(joined) and depth > 0:
                if joined[i] == "(":
                    depth += 1
                elif joined[i] == ")":
                    depth -= 1
                i += 1
            if "memory_order" not in joined[m.end():i]:
                idx = joined.count("\n", 0, m.start())
                report(idx, "memory-order",
                       f"atomic .{m.group(1)}() without an explicit "
                       "std::memory_order argument")


# Files allowed to name the binary trace magic. lint_plsim.py itself is
# exempt (the rule's implementation must spell the token it hunts).
TRACE_FORMAT_ALLOWED = (
    "src/trace/",
    "tools/trace_summary.py",
    "tools/activity_from_trace.py",
    "tools/lint_plsim.py",
)
TRACE_FORMAT_WAIVER = re.compile(
    r"(?://|#)\s*plsim-lint:\s*allow\(trace-format\)")


def check_trace_format(root, findings):
    """trace-format: the PLSTRC magic is confined to src/trace/ + the two
    sanctioned tools. Scans wider than the other rules (bench/tests/tools/
    examples, C++ and Python) because format re-implementations historically
    grow in harnesses first. Matches raw lines: the magic only ever appears
    inside string literals, which strip_comments_and_strings blanks out."""
    exts = CXX_EXTS | {".py"}
    scanned = 0
    for sub in ("src", "bench", "tests", "tools", "examples"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in exts or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if rel.startswith(TRACE_FORMAT_ALLOWED):
                continue
            scanned += 1
            lines = path.read_text(encoding="utf-8",
                                   errors="replace").splitlines()
            for idx, line in enumerate(lines):
                if "PLSTRC" not in line:
                    continue
                if any(TRACE_FORMAT_WAIVER.search(lines[j])
                       for j in (idx, idx - 1) if 0 <= j < len(lines)):
                    continue
                findings.append(
                    f"{rel}:{idx + 1}: [trace-format] trace container magic "
                    "outside src/trace/ and the sanctioned tools — parse "
                    "captures via trace::read_trace_file or "
                    "tools/activity_from_trace.py, never by hand")
    return scanned


# Files allowed to touch the socket layer directly. The two service binaries
# in practice only use UnixServer/ServiceClient, but they own the daemon's
# transport and may legitimately need e.g. poll-on-fd glue.
SOCKET_CONFINE_ALLOWED = (
    "src/server/",
    "tools/plsimd.cpp",
    "tools/plsim_load.cpp",
    "tools/lint_plsim.py",
)
SOCKET_USE = re.compile(
    r"#\s*include\s*<sys/(?:socket|un)\.h>"
    r"|::\s*(?:socket|bind|listen|accept|connect|recv|recvfrom|send|sendto"
    r"|getsockopt|setsockopt)\s*\("
    r"|\bsockaddr_un\b"
)
SOCKET_CONFINE_WAIVER = re.compile(
    r"(?://|#)\s*plsim-lint:\s*allow\(socket-confine\)")


def check_socket_confine(root, findings):
    """socket-confine: raw socket code stays in src/server/ + the service
    binaries. Scans the same wide set as trace-format — a test or bench that
    opens its own socket bypasses the framing/shutdown semantics the server
    types encode."""
    exts = CXX_EXTS | {".py"}
    for sub in ("src", "bench", "tests", "tools", "examples"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in exts or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if rel.startswith(SOCKET_CONFINE_ALLOWED):
                continue
            lines = path.read_text(encoding="utf-8",
                                   errors="replace").splitlines()
            in_block = False
            for idx, raw in enumerate(lines):
                line = raw
                if in_block:
                    end = line.find("*/")
                    if end < 0:
                        continue
                    line = line[end + 2:]
                    in_block = False
                if "/*" in line and "*/" not in line[line.find("/*"):]:
                    line = line[:line.find("/*")]
                    in_block = True
                code = strip_comments_and_strings(line)
                m = SOCKET_USE.search(code)
                if not m:
                    continue
                if any(SOCKET_CONFINE_WAIVER.search(lines[j])
                       for j in (idx, idx - 1) if 0 <= j < len(lines)):
                    continue
                findings.append(
                    f"{rel}:{idx + 1}: [socket-confine] raw socket code "
                    f"'{m.group(0).strip()}' outside src/server/ and the "
                    "service binaries — go through "
                    "ServiceClient/UnixServer instead")


def check_headers(root, headers, findings):
    """header-selfcontained: syntax-check every src/ header standalone."""
    compiler = shutil.which("c++") or shutil.which("g++") or \
        shutil.which("clang++")
    if compiler is None:
        print("lint_plsim: no C++ compiler on PATH; "
              "skipping header-selfcontained")
        return

    def compile_one(path):
        rel = path.relative_to(root).as_posix()
        if WAIVER_FILE.search(path.read_text(encoding="utf-8",
                                             errors="replace")):
            return None
        proc = subprocess.run(
            [compiler, "-std=c++20", "-fsyntax-only",
             "-I", str(root / "src"), "-x", "c++", str(path)],
            capture_output=True, text=True)
        if proc.returncode != 0:
            first = (proc.stderr.strip().splitlines() or ["(no output)"])[0]
            return (f"{rel}:1: [header-selfcontained] does not compile "
                    f"standalone: {first}")
        return None

    with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
        for result in pool.map(compile_one, headers):
            if result:
                findings.append(result)


WAIVER_FILE = re.compile(r"//\s*plsim-lint:\s*allow\(header-selfcontained\)")


def main():
    if len(sys.argv) != 2:
        print("usage: lint_plsim.py <repo-root>", file=sys.stderr)
        return 2
    root = Path(sys.argv[1])
    if not (root / "src").is_dir():
        print(f"error: {root} has no src/ directory", file=sys.stderr)
        return 2

    findings = []
    files = sorted(
        p for p in (root / "src").rglob("*") if p.suffix in CXX_EXTS
    )
    for path in files:
        lint_file(path, path.relative_to(root).as_posix(), findings)
    check_trace_format(root, findings)
    check_socket_confine(root, findings)
    check_headers(root, [p for p in files if p.suffix in {".hpp", ".hh", ".h"}],
                  findings)

    if findings:
        print(f"lint_plsim: {len(findings)} finding(s):")
        for f in findings:
            print("  " + f)
        return 1
    print(f"lint_plsim: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
